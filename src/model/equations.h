// Analytical model of hybrid search (paper Section 6.1, Equations 1–5).
//
// The paper's Tables 1 and 2 define the notation; they map to the structs
// below:
//   Table 1: N (SystemParams::num_nodes), Nhorizon (horizon_nodes),
//            Ri (replicas arguments), Ti (ItemParams::lifetime),
//            Qi (ItemParams::query_freq).
//   Table 2: PF*/PNF* (the probability functions), CS/CP/CO (the cost
//            functions below).
#pragma once

#include <cstdint>

namespace pierstack::model {

/// Global system parameters (paper Table 1).
struct SystemParams {
  double num_nodes = 0;      ///< N: nodes in the system.
  double horizon_nodes = 0;  ///< Nhorizon: distinct nodes a flood reaches
                             ///< (includes the query node itself).
};

/// Per-item parameters (paper Table 1).
struct ItemParams {
  double replicas = 1;    ///< Ri.
  double query_freq = 1;  ///< Qi: queries per time unit.
  double lifetime = 1;    ///< Ti: item lifetime in the network.
  bool published = false; ///< Whether the item is in the DHT partial index
                          ///< (PF_DHT is its indicator).
};

/// Cost constants (paper Section 6.1's cost discussion).
struct CostParams {
  double cs_dht = 0;  ///< CS_DHT: messages per DHT query (≈ log N with the
                      ///< InvertedCache option).
  double cp_dht = 0;  ///< CP_DHT: messages to publish one item.
};

/// Equation 2: probability a query for an item with `replicas` copies
/// finds at least one within a random `horizon_nodes`-node flood over
/// `num_nodes` nodes (sampling without replacement).
double PFGnutella(double replicas, const SystemParams& params);

/// Equation 1: PF_hybrid = PF_g + (1 - PF_g) * PF_DHT, with PF_DHT the
/// published indicator.
double PFHybrid(double replicas, bool published, const SystemParams& params);

/// Figure 9's PF_threshold: the lower bound of PF_hybrid over all items
/// when every item with replicas <= replica_threshold is published. Items
/// published are found with probability 1; the worst unpublished item has
/// replica_threshold + 1 copies.
double PFThreshold(uint32_t replica_threshold, const SystemParams& params);

/// Equation 3: per-time-unit search cost of an item in the hybrid system:
/// Qi * ((Nhorizon - 1) + PNF_g * CS_DHT).
double SearchCost(const ItemParams& item, const SystemParams& params,
                  const CostParams& costs);

/// Equation 4: total per-time-unit cost of supporting an item:
/// CS_hybrid + PF_DHT * CP_DHT / Ti.
double TotalItemCost(const ItemParams& item, const SystemParams& params,
                     const CostParams& costs);

/// Equation 5 (one term): the publishing cost an item contributes to
/// CP_all,hybrid = Σ PF_DHT * CP_DHT.
double PublishCost(const ItemParams& item, const CostParams& costs);

/// Default CS_DHT for an N-node overlay: log2(N) routing messages (paper:
/// "In a typical DHT system, CS_DHT is log N messages").
double DefaultDhtSearchCost(double num_nodes);

}  // namespace pierstack::model
