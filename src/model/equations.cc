#include "model/equations.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pierstack::model {

double PFGnutella(double replicas, const SystemParams& params) {
  double n = params.num_nodes;
  double h = params.horizon_nodes;
  assert(n >= 1);
  if (replicas <= 0 || h <= 0) return 0.0;
  if (replicas >= n) return 1.0;
  if (h >= n) return 1.0;
  // log Π_{j=0}^{h-1} (1 - R/(N-j)), guarding factors that reach zero.
  double log_miss = 0.0;
  for (double j = 0; j < h; ++j) {
    double denom = n - j;
    if (replicas >= denom) return 1.0;
    log_miss += std::log1p(-replicas / denom);
  }
  return 1.0 - std::exp(log_miss);
}

double PFHybrid(double replicas, bool published, const SystemParams& params) {
  double pf_g = PFGnutella(replicas, params);
  double pf_dht = published ? 1.0 : 0.0;
  return pf_g + (1.0 - pf_g) * pf_dht;
}

double PFThreshold(uint32_t replica_threshold, const SystemParams& params) {
  // Published items (R <= threshold) are always found; the binding
  // constraint is the least-replicated unpublished item.
  return PFGnutella(static_cast<double>(replica_threshold) + 1.0, params);
}

double SearchCost(const ItemParams& item, const SystemParams& params,
                  const CostParams& costs) {
  double pnf_g = 1.0 - PFGnutella(item.replicas, params);
  return item.query_freq *
         ((params.horizon_nodes - 1.0) + pnf_g * costs.cs_dht);
}

double TotalItemCost(const ItemParams& item, const SystemParams& params,
                     const CostParams& costs) {
  double publish_rate =
      item.published && item.lifetime > 0 ? costs.cp_dht / item.lifetime : 0.0;
  return SearchCost(item, params, costs) + publish_rate;
}

double PublishCost(const ItemParams& item, const CostParams& costs) {
  return item.published ? costs.cp_dht : 0.0;
}

double DefaultDhtSearchCost(double num_nodes) {
  return std::log2(std::max(2.0, num_nodes));
}

}  // namespace pierstack::model
