// Shared Gnutella protocol types: files, queries, results, configuration.
//
// Models the Gnutella 0.6 network as described in Section 4 of the paper:
// ultrapeer/leaf roles, TTL-scoped flooding with GUID duplicate
// suppression, reverse-path query-hit routing, dynamic querying, leaf file
// publishing and the BrowseHost API.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pierstack::gnutella {

/// Gnutella message GUID (the real protocol uses 16 bytes; 8 suffice for
/// simulation and are charged as 16 on the wire).
using Guid = uint64_t;

/// A file shared by some node.
struct SharedFile {
  uint64_t file_id = 0;  ///< Hash of (filename, size, owner) — see MakeFileId.
  std::string filename;
  uint64_t size_bytes = 0;
};

/// One entry of a query result set.
struct QueryResult {
  uint64_t file_id = 0;
  std::string filename;
  uint64_t size_bytes = 0;
  sim::HostId owner = sim::kInvalidHost;  ///< Node sharing the file.
};

/// Node role. Per the paper: leaves publish their file lists to ultrapeers
/// and issue queries through them; ultrapeers answer and flood on their
/// behalf.
enum class Role {
  kLeaf,
  kUltrapeer,
};

/// How an ultrapeer disseminates queries.
enum class QueryMode {
  /// Plain flooding: forward to every ultrapeer neighbor with a fixed TTL.
  kFlood,
  /// LimeWire-style dynamic querying: probe, then widen neighbor by
  /// neighbor until enough results arrived (Section 4, "dynamic querying").
  kDynamic,
};

/// Dynamic querying knobs (defaults follow LimeWire's published design).
struct DynamicQueryConfig {
  size_t probe_neighbors = 3;    ///< Neighbors probed in the first round.
  uint8_t probe_ttl = 1;
  sim::SimTime probe_wait = 2400 * sim::kMillisecond;
  sim::SimTime per_neighbor_wait = 2400 * sim::kMillisecond;
  size_t desired_results = 150;  ///< Stop once this many results arrived.
  uint8_t max_ttl = 3;
};

/// How leaves make their libraries searchable at their ultrapeers.
enum class LeafPublishMode {
  /// Publish the full file list; the ultrapeer answers on the leaf's
  /// behalf (the paper's baseline model).
  kFullList,
  /// Publish a Bloom filter of the library's keywords (the paper's
  /// footnote on newer LimeWire / query-routing): the ultrapeer forwards
  /// matching queries to the leaf, which answers itself. Cheaper to
  /// publish; costs per-query forwards and false positives.
  kBloomFilter,
};

/// Network-wide protocol configuration.
struct GnutellaConfig {
  size_t max_leaves_per_ultrapeer = 30;  ///< Paper: 30 (new) or 75 (old).
  size_t ultrapeer_degree = 8;           ///< Paper: 32 (new) or 6 (old).
  size_t ultrapeers_per_leaf = 3;        ///< LimeWire default.
  QueryMode query_mode = QueryMode::kFlood;
  uint8_t flood_ttl = 2;                 ///< TTL in kFlood mode.
  DynamicQueryConfig dynamic;
  size_t guid_route_capacity = 1 << 16;  ///< Reverse-path table size cap.
  LeafPublishMode leaf_publish = LeafPublishMode::kFullList;
  double qrp_fp_rate = 0.02;             ///< Bloom sizing in kBloomFilter.
};

/// Aggregate protocol counters for one simulated network. One instance is
/// shared by every node, so the fields are RelaxedCounters: node handlers
/// on different shards bump them concurrently, and the totals are exact
/// by the time the sharded executor reaches a barrier.
struct GnutellaMetrics {
  RelaxedCounter queries_started = 0;
  RelaxedCounter query_messages = 0;      ///< Query forwards on the wire.
  RelaxedCounter query_hit_messages = 0;  ///< Hit messages (incl. reverse-path hops).
  RelaxedCounter duplicate_queries = 0;   ///< Floods suppressed by GUID.
  RelaxedCounter ttl_expired = 0;
  RelaxedCounter results_delivered = 0;   ///< Result records handed to query roots.
  RelaxedCounter qrp_leaf_forwards = 0;   ///< Queries forwarded UP → leaf (QRP).
  RelaxedCounter qrp_false_positives = 0; ///< Forwards that matched nothing.
};

/// Stable file id: hash of identity fields. Two replicas of the same
/// content on different hosts get different fileIDs (they are distinct
/// "results" under the paper's QR metric) but share the filename.
uint64_t MakeFileId(const std::string& filename, uint64_t size_bytes,
                    sim::HostId owner);

/// Wire message discriminators (sim::Message::type) of the Gnutella
/// protocol. Shared here because the crawler speaks the crawl subset
/// without being a GnutellaNode.
enum GnutellaMsg : int {
  kMsgQuery = 1,
  kMsgQueryHit = 2,
  kMsgLeafQuery = 3,
  kMsgLeafPublish = 4,
  kMsgBrowseReq = 5,
  kMsgBrowseReply = 6,
  kMsgCrawlReq = 7,
  kMsgCrawlReply = 8,
  kMsgLeafPublishBloom = 9,
  kMsgLeafForwardQuery = 10,
};

/// What a node reports to the crawler (the paper's neighbor-list API).
struct CrawlInfo {
  sim::HostId host = sim::kInvalidHost;
  Role role = Role::kLeaf;
  std::vector<sim::HostId> ultrapeer_neighbors;
  size_t leaf_count = 0;
};

/// Crawl request/response wire bodies.
struct CrawlRequestBody {
  uint64_t req_id;
};
struct CrawlReplyBody {
  uint64_t req_id;
  CrawlInfo info;
};

}  // namespace pierstack::gnutella
