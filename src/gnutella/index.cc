#include "gnutella/index.h"

#include <algorithm>

#include "common/tokenizer.h"

namespace pierstack::gnutella {

void KeywordIndex::Add(const SharedFile& file, sim::HostId owner) {
  uint32_t idx = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{file.file_id, file.filename, file.size_bytes,
                           owner});
  ++live_entries_;
  for (const auto& term : ExtractUniqueKeywords(file.filename)) {
    postings_[term].push_back(idx);
  }
}

void KeywordIndex::AddAll(const std::vector<SharedFile>& files,
                          sim::HostId owner) {
  for (const auto& f : files) Add(f, owner);
}

void KeywordIndex::RemoveOwner(sim::HostId owner) {
  for (auto& e : entries_) {
    if (e.owner == owner) {
      e.owner = sim::kInvalidHost;
      --live_entries_;
    }
  }
}

std::vector<const KeywordIndex::Entry*> KeywordIndex::Match(
    const std::vector<std::string>& query_terms) const {
  std::vector<const Entry*> out;
  // Keep only indexable terms; an all-stop-word query matches nothing.
  std::vector<std::string> terms;
  const auto& stop = DefaultStopWords();
  for (const auto& t : query_terms) {
    if (t.size() < 2 || stop.count(t)) continue;
    terms.push_back(t);
  }
  if (terms.empty()) return out;

  // Start from the shortest posting list (the paper's smaller-posting-
  // lists-first optimization applies locally too).
  std::sort(terms.begin(), terms.end(),
            [this](const std::string& a, const std::string& b) {
              return PostingListSize(a) < PostingListSize(b);
            });
  auto first = postings_.find(terms[0]);
  if (first == postings_.end()) return out;

  std::vector<uint32_t> candidates;
  for (uint32_t idx : first->second) {
    if (Live(idx)) candidates.push_back(idx);
  }
  for (size_t t = 1; t < terms.size() && !candidates.empty(); ++t) {
    auto it = postings_.find(terms[t]);
    if (it == postings_.end()) return {};
    // Posting lists are sorted by construction (append order).
    const auto& list = it->second;
    std::vector<uint32_t> next;
    next.reserve(candidates.size());
    std::set_intersection(candidates.begin(), candidates.end(), list.begin(),
                          list.end(), std::back_inserter(next));
    candidates = std::move(next);
  }
  out.reserve(candidates.size());
  for (uint32_t idx : candidates) out.push_back(&entries_[idx]);
  return out;
}

std::vector<const KeywordIndex::Entry*> KeywordIndex::MatchText(
    const std::string& query_text) const {
  return Match(SplitTerms(query_text));
}

size_t KeywordIndex::PostingListSize(const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second.size();
}

std::vector<const KeywordIndex::Entry*> KeywordIndex::AllEntries() const {
  std::vector<const Entry*> out;
  out.reserve(live_entries_);
  for (const auto& e : entries_) {
    if (e.owner != sim::kInvalidHost) out.push_back(&e);
  }
  return out;
}

}  // namespace pierstack::gnutella
