#include "gnutella/crawler.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace pierstack::gnutella {

Crawler::Crawler(sim::Network* network, size_t parallelism)
    : network_(network), parallelism_(parallelism) {
  assert(parallelism >= 1);
  host_ = network->AddHost(this);
}

void Crawler::Start(std::vector<sim::HostId> seeds, DoneCallback done) {
  started_ = true;
  done_ = std::move(done);
  for (sim::HostId s : seeds) {
    if (visited_.insert(s).second) frontier_.push_back(s);
  }
  Pump();
}

void Crawler::Pump() {
  while (in_flight_ < parallelism_ && !frontier_.empty()) {
    sim::HostId target = frontier_.back();
    frontier_.pop_back();
    RequestPeer(target);
  }
  if (in_flight_ == 0 && frontier_.empty() && done_) {
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(graph_);
  }
}

void Crawler::RequestPeer(sim::HostId target) {
  uint64_t req_id = next_req_id_++;
  ++graph_.crawl_messages;
  if (network_->Send(host_, target,
                     sim::Message::Make<CrawlRequestBody>(
                         kMsgCrawlReq, "gnutella.crawl", 16,
                         CrawlRequestBody{req_id}))) {
    pending_[req_id] = target;
    ++in_flight_;
  }
  // Unreachable nodes are silently skipped, like churned peers mid-crawl.
}

void Crawler::HandleMessage(sim::HostId /*from*/, const sim::Message& msg) {
  if (msg.type != kMsgCrawlReply) return;
  const auto& reply = msg.as<CrawlReplyBody>();
  auto it = pending_.find(reply.req_id);
  if (it == pending_.end()) return;
  pending_.erase(it);
  --in_flight_;

  const auto& info = reply.info;
  if (info.role == Role::kUltrapeer) {
    graph_.adjacency[info.host] = info.ultrapeer_neighbors;
    graph_.total_leaves += info.leaf_count;
    for (sim::HostId n : info.ultrapeer_neighbors) {
      if (visited_.insert(n).second) frontier_.push_back(n);
    }
  }
  Pump();
}

std::vector<FloodStep> FloodExpansion(const CrawlGraph& graph,
                                      sim::HostId source, uint32_t max_ttl) {
  std::vector<FloodStep> out;
  auto deg = [&](sim::HostId h) -> uint64_t {
    auto it = graph.adjacency.find(h);
    return it == graph.adjacency.end() ? 0 : it->second.size();
  };
  // BFS layers from the source.
  std::unordered_map<sim::HostId, uint32_t> depth;
  std::deque<sim::HostId> queue;
  depth[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    sim::HostId v = queue.front();
    queue.pop_front();
    auto it = graph.adjacency.find(v);
    if (it == graph.adjacency.end()) continue;
    for (sim::HostId n : it->second) {
      if (depth.count(n)) continue;
      depth[n] = depth[v] + 1;
      queue.push_back(n);
    }
  }
  // messages(ttl): the source sends deg(source); every node first reached
  // at depth d in [1, ttl-1] forwards to deg(v)-1 neighbors. Duplicate
  // deliveries are paid for as messages but reach no new node — the
  // diminishing-returns effect of Section 4.3.
  for (uint32_t ttl = 1; ttl <= max_ttl; ++ttl) {
    FloodStep step{ttl, 0, 0};
    for (const auto& [v, d] : depth) {
      if (d <= ttl) step.ultrapeers_reached += 1;
      if (d == 0) {
        step.messages += deg(v);
      } else if (d >= 1 && d < ttl) {
        step.messages += deg(v) - 1;
      }
    }
    out.push_back(step);
  }
  return out;
}

std::vector<FloodStep> FloodExpansionAveraged(
    const CrawlGraph& graph, const std::vector<sim::HostId>& sources,
    uint32_t max_ttl) {
  std::vector<FloodStep> acc;
  for (uint32_t ttl = 1; ttl <= max_ttl; ++ttl) {
    acc.push_back(FloodStep{ttl, 0, 0});
  }
  if (sources.empty()) return acc;
  for (sim::HostId s : sources) {
    auto one = FloodExpansion(graph, s, max_ttl);
    for (size_t i = 0; i < acc.size(); ++i) {
      acc[i].ultrapeers_reached += one[i].ultrapeers_reached;
      acc[i].messages += one[i].messages;
    }
  }
  for (auto& step : acc) {
    step.ultrapeers_reached /= sources.size();
    step.messages /= sources.size();
  }
  return acc;
}

}  // namespace pierstack::gnutella
