#include "gnutella/node.h"

#include <algorithm>
#include <cassert>

#include "common/hashing.h"
#include "common/tokenizer.h"

namespace pierstack::gnutella {

uint64_t MakeFileId(const std::string& filename, uint64_t size_bytes,
                    sim::HostId owner) {
  return FileId(filename, size_bytes, owner);
}

GnutellaNode::GnutellaNode(sim::Network* network, Role role,
                           const GnutellaConfig* config,
                           GnutellaMetrics* metrics, uint64_t seed)
    : network_(network),
      role_(role),
      config_(config),
      metrics_(metrics),
      rng_(seed) {
  assert(network != nullptr && config != nullptr && metrics != nullptr);
  host_ = network->AddHost(this);
}

GnutellaNode::~GnutellaNode() = default;

void GnutellaNode::SetSharedFiles(std::vector<std::string> filenames,
                                  std::vector<uint64_t> sizes) {
  index_.RemoveOwner(host_);
  files_.clear();
  files_.reserve(filenames.size());
  for (size_t i = 0; i < filenames.size(); ++i) {
    uint64_t size = i < sizes.size()
                        ? sizes[i]
                        : 1024 * (1 + Fnv1a64(filenames[i]) % 8192);
    SharedFile f;
    f.filename = std::move(filenames[i]);
    f.size_bytes = size;
    f.file_id = MakeFileId(f.filename, f.size_bytes, host_);
    files_.push_back(std::move(f));
  }
  // A node answers queries over its own library regardless of role.
  index_.AddAll(files_, host_);
}

void GnutellaNode::AddUltrapeerNeighbor(sim::HostId neighbor) {
  assert(role_ == Role::kUltrapeer);
  up_neighbors_.push_back(neighbor);
}

void GnutellaNode::ConnectToUltrapeer(sim::HostId ultrapeer) {
  parents_.push_back(ultrapeer);
  RepublishTo(ultrapeer);
}

void GnutellaNode::RepublishTo(sim::HostId ultrapeer) {
  if (config_->leaf_publish == LeafPublishMode::kBloomFilter) {
    // QRP: summarize the library's keywords in a Bloom filter.
    std::unordered_set<std::string> terms;
    for (const auto& f : files_) {
      for (auto& kw : ExtractUniqueKeywords(f.filename)) {
        terms.insert(std::move(kw));
      }
    }
    BloomFilter bloom = BloomFilter::ForItems(
        std::max<size_t>(terms.size(), 8), config_->qrp_fp_rate);
    for (const auto& t : terms) bloom.Insert(t);
    size_t bytes = bloom.ByteSize();
    network_->Send(host_, ultrapeer,
                   sim::Message::Make<LeafBloomBody>(
                       kMsgLeafPublishBloom, "gnutella.publish", bytes,
                       LeafBloomBody{std::move(bloom), files_.size()}));
    return;
  }
  size_t bytes = 0;
  for (const auto& f : files_) bytes += f.filename.size() + 10;
  network_->Send(host_, ultrapeer,
                 sim::Message::Make<LeafPublishBody>(
                     kMsgLeafPublish, "gnutella.publish", bytes,
                     LeafPublishBody{files_}));
}

Guid GnutellaNode::StartQuery(const std::string& text,
                              ResultCallback callback) {
  ++metrics_->queries_started;
  Guid guid = rng_.Next();
  local_queries_[guid] = LocalQuery{std::move(callback), {}};
  if (role_ == Role::kLeaf) {
    assert(!parents_.empty() && "leaf must be attached to an ultrapeer");
    network_->Send(host_, parents_.front(),
                   sim::Message::Make<LeafQueryBody>(
                       kMsgLeafQuery, "gnutella.query", 25 + text.size(),
                       LeafQueryBody{guid, text}));
  } else {
    ExecuteQueryAsRoot(guid, text);
  }
  return guid;
}

void GnutellaNode::EndQuery(Guid guid) {
  local_queries_.erase(guid);
  auto it = dq_states_.find(guid);
  if (it != dq_states_.end()) {
    network_->executor()->Cancel(it->second.tick);
    dq_states_.erase(it);
  }
}

bool GnutellaNode::QueryActive(Guid guid) const {
  return dq_states_.count(guid) > 0;
}

void GnutellaNode::ExecuteQueryAsRoot(Guid guid, const std::string& text) {
  assert(role_ == Role::kUltrapeer);
  RememberGuid(guid, sim::kInvalidHost);  // never re-process our own flood
  if (query_observer_) query_observer_(guid, text, host_);
  MatchLocally(guid, text, sim::kInvalidHost);

  if (config_->query_mode == QueryMode::kFlood) {
    QueryBody q{guid, config_->flood_ttl, 0, text};
    FloodQuery(q, sim::kInvalidHost);
    return;
  }
  BeginDynamicQuery(guid, text);
}

void GnutellaNode::BeginDynamicQuery(Guid guid, const std::string& text) {
  // Dynamic querying: probe a few neighbors at TTL 1, then widen.
  DqState state;
  state.text = text;
  state.pending_neighbors = up_neighbors_;
  rng_.Shuffle(&state.pending_neighbors);
  size_t probes = std::min(config_->dynamic.probe_neighbors,
                           state.pending_neighbors.size());
  for (size_t i = 0; i < probes; ++i) {
    SendQueryTo(state.pending_neighbors.back(), guid, text,
                config_->dynamic.probe_ttl);
    state.pending_neighbors.pop_back();
  }
  state.tick = network_->executor()->ScheduleAfter(host_, 
      config_->dynamic.probe_wait, [this, guid]() { DynamicTick(guid); });
  dq_states_[guid] = std::move(state);
}

void GnutellaNode::DynamicTick(Guid guid) {
  auto it = dq_states_.find(guid);
  if (it == dq_states_.end()) return;
  DqState& state = it->second;
  if (state.results >= config_->dynamic.desired_results ||
      state.pending_neighbors.empty()) {
    dq_states_.erase(it);  // query stops widening; hits may still trickle in
    return;
  }
  // LimeWire heuristic, simplified: the fewer the results so far, the
  // deeper the next per-neighbor flood.
  uint8_t ttl;
  if (state.results == 0) {
    ttl = config_->dynamic.max_ttl;
  } else if (state.results < config_->dynamic.desired_results / 2) {
    ttl = std::max<uint8_t>(2, config_->dynamic.max_ttl - 1);
  } else {
    ttl = 1;
  }
  SendQueryTo(state.pending_neighbors.back(), guid, state.text, ttl);
  state.pending_neighbors.pop_back();
  state.tick = network_->executor()->ScheduleAfter(host_, 
      config_->dynamic.per_neighbor_wait,
      [this, guid]() { DynamicTick(guid); });
}

void GnutellaNode::FloodQuery(const QueryBody& q, sim::HostId exclude) {
  if (q.ttl == 0) {
    ++metrics_->ttl_expired;
    return;
  }
  for (sim::HostId n : up_neighbors_) {
    if (n == exclude) continue;
    ++metrics_->query_messages;
    network_->Send(host_, n,
                   sim::Message::Make<QueryBody>(kMsgQuery, "gnutella.query",
                                                 QueryWireBytes(q), q));
  }
}

void GnutellaNode::SendQueryTo(sim::HostId neighbor, Guid guid,
                               const std::string& text, uint8_t ttl) {
  QueryBody q{guid, ttl, 0, text};
  ++metrics_->query_messages;
  network_->Send(host_, neighbor,
                 sim::Message::Make<QueryBody>(kMsgQuery, "gnutella.query",
                                               QueryWireBytes(q), q));
}

size_t GnutellaNode::HitWireBytes(const QueryHitBody& h) {
  size_t bytes = 23 + 11;  // header + hit preamble (ip, port, speed, count)
  for (const auto& r : h.results) bytes += r.filename.size() + 18;
  return bytes;
}

void GnutellaNode::MatchLocally(Guid guid, const std::string& text,
                                sim::HostId reply_to) {
  // QRP: forward the query to leaves whose keyword Bloom filter matches
  // every term; they answer for themselves and the hit rides the normal
  // reverse path through us.
  if (!leaf_blooms_.empty()) {
    std::vector<std::string> terms;
    const auto& stop = DefaultStopWords();
    for (auto& t : SplitTerms(text)) {
      if (t.size() < 2 || stop.count(t)) continue;
      terms.push_back(std::move(t));
    }
    if (!terms.empty()) {
      auto origin = guid_routes_.find(guid);
      sim::HostId origin_host =
          origin != guid_routes_.end() ? origin->second : sim::kInvalidHost;
      for (const auto& [leaf, bloom] : leaf_blooms_) {
        if (leaf == origin_host) continue;  // don't echo to the asker
        if (!bloom.MayContainAll(terms)) continue;
        ++metrics_->qrp_leaf_forwards;
        network_->Send(host_, leaf,
                       sim::Message::Make<LeafForwardBody>(
                           kMsgLeafForwardQuery, "gnutella.query",
                           25 + text.size(), LeafForwardBody{guid, text}));
      }
    }
  }

  auto matches = index_.MatchText(text);
  if (matches.empty()) return;
  QueryHitBody hit;
  hit.guid = guid;
  hit.results.reserve(matches.size());
  for (const auto* e : matches) {
    hit.results.push_back(
        QueryResult{e->file_id, e->filename, e->size_bytes, e->owner});
  }
  if (reply_to == sim::kInvalidHost) {
    // We are the query root: deliver straight up the local path.
    DeliverOrForwardHit(guid, std::move(hit.results));
  } else {
    ++metrics_->query_hit_messages;
    network_->Send(host_, reply_to,
                   sim::Message::Make<QueryHitBody>(
                       kMsgQueryHit, "gnutella.hit", HitWireBytes(hit),
                       std::move(hit)));
  }
}

void GnutellaNode::DeliverOrForwardHit(Guid guid,
                                       std::vector<QueryResult> results) {
  // Count toward an active dynamic query rooted here.
  auto dq = dq_states_.find(guid);
  if (dq != dq_states_.end()) dq->second.results += results.size();

  auto local = local_queries_.find(guid);
  if (local != local_queries_.end()) {
    // Deduplicate replicas of the same result record (a leaf's file can be
    // indexed by several of its ultrapeers) and drop our own files, which
    // can echo back through a secondary parent ultrapeer.
    std::vector<QueryResult> fresh;
    for (auto& r : results) {
      if (r.owner == host_) continue;
      if (local->second.seen_file_ids.insert(r.file_id).second) {
        fresh.push_back(std::move(r));
      }
    }
    if (hit_observer_) {
      hit_observer_(guid, fresh, local->second.seen_file_ids.size());
    }
    if (!fresh.empty()) {
      metrics_->results_delivered += fresh.size();
      local->second.callback(fresh);
    }
    return;
  }

  auto route = guid_routes_.find(guid);
  if (route == guid_routes_.end() || route->second == sim::kInvalidHost) {
    return;  // route evicted or unknown: drop the hit
  }
  QueryHitBody hit{guid, std::move(results)};
  if (hit_observer_) {
    hit_observer_(guid, hit.results, 0);
  }
  ++metrics_->query_hit_messages;
  network_->Send(host_, route->second,
                 sim::Message::Make<QueryHitBody>(kMsgQueryHit, "gnutella.hit",
                                                  HitWireBytes(hit),
                                                  std::move(hit)));
}

void GnutellaNode::RememberGuid(Guid guid, sim::HostId from) {
  seen_guids_.insert(guid);
  guid_routes_[guid] = from;
  guid_fifo_.push_back(guid);
  while (guid_fifo_.size() > config_->guid_route_capacity) {
    Guid old = guid_fifo_.front();
    guid_fifo_.pop_front();
    seen_guids_.erase(old);
    guid_routes_.erase(old);
  }
}

void GnutellaNode::BrowseHost(sim::HostId target, BrowseCallback callback) {
  uint64_t req_id = next_req_id_++;
  pending_browses_[req_id] = std::move(callback);
  if (!network_->Send(host_, target,
                      sim::Message::Make<BrowseReqBody>(
                          kMsgBrowseReq, "gnutella.browse", 16,
                          BrowseReqBody{req_id}))) {
    auto cb = std::move(pending_browses_[req_id]);
    pending_browses_.erase(req_id);
    cb(Status::Unavailable("browse target down"), {});
  }
}

void GnutellaNode::CrawlPeer(sim::HostId target, CrawlCallback callback) {
  uint64_t req_id = next_req_id_++;
  pending_crawls_[req_id] = std::move(callback);
  if (!network_->Send(host_, target,
                      sim::Message::Make<CrawlRequestBody>(
                          kMsgCrawlReq, "gnutella.crawl", 16,
                          CrawlRequestBody{req_id}))) {
    auto cb = std::move(pending_crawls_[req_id]);
    pending_crawls_.erase(req_id);
    cb(Status::Unavailable("crawl target down"), {});
  }
}

void GnutellaNode::HandleMessage(sim::HostId from, const sim::Message& msg) {
  switch (msg.type) {
    case kMsgQuery: {
      const auto& q = msg.as<QueryBody>();
      if (SeenGuid(q.guid)) {
        ++metrics_->duplicate_queries;
        return;
      }
      RememberGuid(q.guid, from);
      if (query_observer_) query_observer_(q.guid, q.text, from);
      MatchLocally(q.guid, q.text, from);
      if (q.ttl > 1) {
        QueryBody fwd{q.guid, static_cast<uint8_t>(q.ttl - 1),
                      static_cast<uint8_t>(q.hops + 1), q.text};
        FloodQuery(fwd, from);
      } else {
        ++metrics_->ttl_expired;
      }
      return;
    }
    case kMsgQueryHit: {
      const auto& h = msg.as<QueryHitBody>();
      DeliverOrForwardHit(h.guid, h.results);
      return;
    }
    case kMsgLeafQuery: {
      // A leaf asks us to run a query on its behalf.
      const auto& q = msg.as<LeafQueryBody>();
      if (SeenGuid(q.guid)) return;
      RememberGuid(q.guid, from);  // hits route back to the leaf
      if (query_observer_) query_observer_(q.guid, q.text, from);
      MatchLocally(q.guid, q.text, sim::kInvalidHost);
      if (config_->query_mode == QueryMode::kFlood) {
        QueryBody body{q.guid, config_->flood_ttl, 0, q.text};
        FloodQuery(body, sim::kInvalidHost);
      } else {
        BeginDynamicQuery(q.guid, q.text);
      }
      return;
    }
    case kMsgLeafPublish: {
      const auto& pub = msg.as<LeafPublishBody>();
      if (std::find(leaf_hosts_.begin(), leaf_hosts_.end(), from) ==
          leaf_hosts_.end()) {
        leaf_hosts_.push_back(from);
      } else {
        index_.RemoveOwner(from);  // re-publish replaces the old list
      }
      index_.AddAll(pub.files, from);
      return;
    }
    case kMsgLeafPublishBloom: {
      const auto& pub = msg.as<LeafBloomBody>();
      if (std::find(leaf_hosts_.begin(), leaf_hosts_.end(), from) ==
          leaf_hosts_.end()) {
        leaf_hosts_.push_back(from);
      }
      leaf_blooms_.insert_or_assign(from, pub.keywords);
      return;
    }
    case kMsgLeafForwardQuery: {
      // Our ultrapeer forwarded a query our Bloom filter matched: answer
      // from the local library; an empty match is a Bloom false positive.
      const auto& fwd = msg.as<LeafForwardBody>();
      auto matches = index_.MatchText(fwd.text);
      if (matches.empty()) {
        ++metrics_->qrp_false_positives;
        return;
      }
      QueryHitBody hit;
      hit.guid = fwd.guid;
      hit.results.reserve(matches.size());
      for (const auto* e : matches) {
        hit.results.push_back(
            QueryResult{e->file_id, e->filename, e->size_bytes, e->owner});
      }
      ++metrics_->query_hit_messages;
      network_->Send(host_, from,
                     sim::Message::Make<QueryHitBody>(
                         kMsgQueryHit, "gnutella.hit", HitWireBytes(hit),
                         std::move(hit)));
      return;
    }
    case kMsgBrowseReq: {
      const auto& req = msg.as<BrowseReqBody>();
      size_t bytes = 16;
      for (const auto& f : files_) bytes += f.filename.size() + 10;
      network_->Send(host_, from,
                     sim::Message::Make<BrowseReplyBody>(
                         kMsgBrowseReply, "gnutella.browse", bytes,
                         BrowseReplyBody{req.req_id, files_}));
      return;
    }
    case kMsgBrowseReply: {
      const auto& reply = msg.as<BrowseReplyBody>();
      auto it = pending_browses_.find(reply.req_id);
      if (it == pending_browses_.end()) return;
      BrowseCallback cb = std::move(it->second);
      pending_browses_.erase(it);
      cb(Status::OK(), reply.files);
      return;
    }
    case kMsgCrawlReq: {
      const auto& req = msg.as<CrawlRequestBody>();
      CrawlInfo info;
      info.host = host_;
      info.role = role_;
      info.ultrapeer_neighbors = up_neighbors_;
      info.leaf_count = leaf_hosts_.size();
      network_->Send(host_, from,
                     sim::Message::Make<CrawlReplyBody>(
                         kMsgCrawlReply, "gnutella.crawl",
                         16 + 6 * info.ultrapeer_neighbors.size(),
                         CrawlReplyBody{req.req_id, std::move(info)}));
      return;
    }
    case kMsgCrawlReply: {
      const auto& reply = msg.as<CrawlReplyBody>();
      auto it = pending_crawls_.find(reply.req_id);
      if (it == pending_crawls_.end()) return;
      CrawlCallback cb = std::move(it->second);
      pending_crawls_.erase(it);
      cb(Status::OK(), reply.info);
      return;
    }
    default:
      return;
  }
}

}  // namespace pierstack::gnutella
