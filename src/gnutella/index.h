// KeywordIndex: the per-ultrapeer inverted index over shared filenames.
//
// An ultrapeer answers queries against its own files plus the file lists
// its leaves published. Matching is conjunctive keyword match: a file
// matches iff every query keyword appears among the file's keywords
// (tokenized and stop-word-filtered identically on both sides).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gnutella/types.h"

namespace pierstack::gnutella {

/// Append-oriented inverted index of shared files.
class KeywordIndex {
 public:
  struct Entry {
    uint64_t file_id;
    std::string filename;
    uint64_t size_bytes;
    sim::HostId owner;
  };

  /// Indexes one file for `owner`.
  void Add(const SharedFile& file, sim::HostId owner);

  /// Indexes a whole file list (e.g. a leaf's published library).
  void AddAll(const std::vector<SharedFile>& files, sim::HostId owner);

  /// Removes every entry owned by `owner` (leaf disconnect). O(index).
  void RemoveOwner(sim::HostId owner);

  /// All entries matching every term in `query_terms` (terms must already
  /// be tokenized/lower-cased; stop words are ignored). An empty term list
  /// matches nothing — Gnutella drops empty queries.
  std::vector<const Entry*> Match(
      const std::vector<std::string>& query_terms) const;

  /// Convenience: tokenizes `query_text` then matches.
  std::vector<const Entry*> MatchText(const std::string& query_text) const;

  /// Number of posting-list entries that a lookup of `term` would scan —
  /// the local analogue of the paper's posting-list length.
  size_t PostingListSize(const std::string& term) const;

  size_t num_entries() const { return live_entries_; }

  /// All live entries (diagnostics / BrowseHost).
  std::vector<const Entry*> AllEntries() const;

 private:
  std::vector<Entry> entries_;             // tombstoned via owner==kInvalidHost
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  size_t live_entries_ = 0;

  bool Live(uint32_t idx) const {
    return entries_[idx].owner != sim::kInvalidHost;
  }
};

}  // namespace pierstack::gnutella
