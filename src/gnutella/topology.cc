#include "gnutella/topology.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace pierstack::gnutella {

GnutellaNetwork::GnutellaNetwork(sim::Network* network,
                                 const TopologyConfig& config)
    : network_(network), config_(config) {
  assert(config.num_ultrapeers >= 1);
  Rng rng(config.seed);

  for (size_t i = 0; i < config.num_ultrapeers; ++i) {
    ultrapeers_.push_back(std::make_unique<GnutellaNode>(
        network, Role::kUltrapeer, &config_.protocol, &metrics_, rng.Next()));
  }
  for (size_t i = 0; i < config.num_leaves; ++i) {
    leaves_.push_back(std::make_unique<GnutellaNode>(
        network, Role::kLeaf, &config_.protocol, &metrics_, rng.Next()));
  }
  for (auto& up : ultrapeers_) {
    while (by_host_.size() <= up->host()) by_host_.push_back(nullptr);
    by_host_[up->host()] = up.get();
  }
  for (auto& leaf : leaves_) {
    while (by_host_.size() <= leaf->host()) by_host_.push_back(nullptr);
    by_host_[leaf->host()] = leaf.get();
  }

  // Ultrapeer mesh: connect each ultrapeer to `degree` random distinct
  // peers (undirected). The incremental random attachment yields the
  // redundant-path structure whose duplicate floods Figure 8 measures.
  size_t n = ultrapeers_.size();
  size_t degree = std::min(config.protocol.ultrapeer_degree, n - 1);
  std::vector<std::unordered_set<size_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    size_t attempts = 0;
    while (adj[i].size() < degree && attempts < 20 * degree) {
      ++attempts;
      size_t j = static_cast<size_t>(rng.NextBelow(n));
      if (j == i || adj[i].count(j)) continue;
      // Respect the peer's degree budget (allow slight overflow to keep
      // the graph connected at small sizes).
      if (adj[j].size() >= degree + 2) continue;
      adj[i].insert(j);
      adj[j].insert(i);
    }
  }
  // Ensure connectivity: chain any isolated ultrapeer to its predecessor.
  for (size_t i = 1; i < n; ++i) {
    if (adj[i].empty()) {
      adj[i].insert(i - 1);
      adj[i - 1].insert(i);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j : adj[i]) {
      ultrapeers_[i]->AddUltrapeerNeighbor(ultrapeers_[j]->host());
    }
  }

  // Leaf attachment: each leaf picks `ultrapeers_per_leaf` distinct
  // ultrapeers with spare capacity.
  std::vector<size_t> capacity(n, config.protocol.max_leaves_per_ultrapeer *
                                      config.protocol.ultrapeers_per_leaf);
  for (auto& leaf : leaves_) {
    std::unordered_set<size_t> chosen;
    size_t want = std::min(config.protocol.ultrapeers_per_leaf, n);
    size_t attempts = 0;
    while (chosen.size() < want && attempts < 50 * want) {
      ++attempts;
      size_t u = static_cast<size_t>(rng.NextBelow(n));
      if (chosen.count(u) || capacity[u] == 0) continue;
      chosen.insert(u);
      --capacity[u];
    }
    if (chosen.empty()) chosen.insert(rng.NextBelow(n));  // overflow fallback
    for (size_t u : chosen) {
      leaf->ConnectToUltrapeer(ultrapeers_[u]->host());
    }
  }
}

GnutellaNode* GnutellaNetwork::by_host(sim::HostId host) const {
  if (host >= by_host_.size()) return nullptr;
  return by_host_[host];
}

void GnutellaNetwork::PublishAllFiles() {
  for (auto& leaf : leaves_) {
    for (sim::HostId up : leaf->parent_ultrapeers()) {
      leaf->RepublishTo(up);
    }
  }
}

}  // namespace pierstack::gnutella
