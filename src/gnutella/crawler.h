// Gnutella topology crawler + flood-cost analysis (paper Sections 4.1/4.3).
//
// The crawler recursively invokes the neighbor-list API from a set of seed
// ultrapeers, exactly like the paper's 45-minute distributed crawl, and
// produces the ultrapeer adjacency graph. FloodExpansion then computes,
// per TTL, how many ultrapeers a flood reaches and how many query messages
// it costs — the data behind Figure 8.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gnutella/node.h"

namespace pierstack::gnutella {

/// The crawled ultrapeer graph (undirected adjacency).
struct CrawlGraph {
  std::unordered_map<sim::HostId, std::vector<sim::HostId>> adjacency;
  uint64_t total_leaves = 0;     ///< Sum of leaf counts reported by UPs.
  uint64_t crawl_messages = 0;   ///< Request messages issued by the crawl.

  size_t num_ultrapeers() const { return adjacency.size(); }
  /// Estimated network size, the paper's headline number: ultrapeers plus
  /// their reported leaves.
  uint64_t EstimatedNetworkSize() const {
    return adjacency.size() + total_leaves;
  }
};

/// Asynchronous parallel crawler. Drive the simulator until `done`.
class Crawler : public sim::Host {
 public:
  using DoneCallback = std::function<void(const CrawlGraph&)>;

  /// `parallelism` bounds in-flight neighbor-list requests, mirroring the
  /// paper's 30 parallel vantage points.
  Crawler(sim::Network* network, size_t parallelism);

  /// Starts crawling from `seeds`; `done` fires when the frontier drains.
  void Start(std::vector<sim::HostId> seeds, DoneCallback done);

  bool finished() const { return started_ && in_flight_ == 0 && frontier_.empty(); }
  const CrawlGraph& graph() const { return graph_; }

  void HandleMessage(sim::HostId from, const sim::Message& msg) override;

 private:
  void Pump();
  void RequestPeer(sim::HostId target);

  sim::Network* network_;
  size_t parallelism_;
  sim::HostId host_;
  bool started_ = false;
  size_t in_flight_ = 0;
  std::vector<sim::HostId> frontier_;
  std::unordered_set<sim::HostId> visited_;
  CrawlGraph graph_;
  DoneCallback done_;
  uint64_t next_req_id_ = 1;
  std::unordered_map<uint64_t, sim::HostId> pending_;
};

/// One TTL step of a flood-cost curve.
struct FloodStep {
  uint32_t ttl;
  uint64_t ultrapeers_reached;  ///< Distinct UPs within TTL hops (incl. src).
  uint64_t messages;            ///< Query messages sent (duplicates included).
};

/// Computes the Figure 8 curve from `source` on the crawled graph:
/// flooding with duplicate-forwarding suppression still pays one message
/// per edge traversal, so reached(TTL) grows sublinearly in messages(TTL).
std::vector<FloodStep> FloodExpansion(const CrawlGraph& graph,
                                      sim::HostId source, uint32_t max_ttl);

/// Averages FloodExpansion over several sources for smoother curves.
std::vector<FloodStep> FloodExpansionAveraged(const CrawlGraph& graph,
                                              const std::vector<sim::HostId>& sources,
                                              uint32_t max_ttl);

}  // namespace pierstack::gnutella
