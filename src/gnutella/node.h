// GnutellaNode: one participant of the unstructured network.
//
// Implements the protocol features the paper measures (Section 4):
//  * ultrapeer / leaf roles; leaves publish their file lists to ultrapeers
//    and query through them,
//  * TTL-scoped query flooding with GUID-based duplicate suppression,
//  * query hits routed back along the reverse query path,
//  * LimeWire-style dynamic querying (probe, then widen until enough
//    results arrive),
//  * BrowseHost (fetch a neighbor's shared files) and a crawler ping that
//    returns the neighbor list (Section 4.1's topology crawl).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bloom.h"
#include "common/rng.h"
#include "common/status.h"
#include "gnutella/index.h"
#include "gnutella/types.h"

namespace pierstack::gnutella {

class GnutellaNode : public sim::Host {
 public:
  /// Receives each query-hit batch for a locally issued query.
  using ResultCallback = std::function<void(const std::vector<QueryResult>&)>;
  /// Observes queries this node processes (own, leaf-issued or forwarded).
  using QueryObserver =
      std::function<void(Guid, const std::string& text, sim::HostId from)>;
  /// Observes query-hit batches this node delivers or forwards, with the
  /// running result count for that GUID (the hybrid proxy's snooping hook).
  using HitObserver = std::function<void(Guid, const std::vector<QueryResult>&,
                                         size_t results_so_far)>;
  using BrowseCallback =
      std::function<void(Status, std::vector<SharedFile>)>;
  using CrawlCallback = std::function<void(Status, CrawlInfo)>;

  GnutellaNode(sim::Network* network, Role role, const GnutellaConfig* config,
               GnutellaMetrics* metrics, uint64_t seed);
  ~GnutellaNode() override;

  Role role() const { return role_; }
  sim::HostId host() const { return host_; }

  // --- Library ------------------------------------------------------------

  /// Replaces this node's shared files; file ids are assigned here.
  void SetSharedFiles(std::vector<std::string> filenames,
                      std::vector<uint64_t> sizes = {});
  const std::vector<SharedFile>& shared_files() const { return files_; }

  // --- Topology wiring (used by TopologyBuilder) ---------------------------

  /// Registers an ultrapeer neighbor edge (one direction; the builder adds
  /// both). Ultrapeers only.
  void AddUltrapeerNeighbor(sim::HostId neighbor);

  /// Leaf side of a leaf↔ultrapeer attachment: remembers the parent and
  /// publishes this leaf's file list to it.
  void ConnectToUltrapeer(sim::HostId ultrapeer);

  /// Re-sends this node's current file list to an already-connected parent
  /// (used after the library changed).
  void RepublishTo(sim::HostId ultrapeer);

  const std::vector<sim::HostId>& ultrapeer_neighbors() const {
    return up_neighbors_;
  }
  const std::vector<sim::HostId>& parent_ultrapeers() const {
    return parents_;
  }
  const std::vector<sim::HostId>& leaves() const { return leaf_hosts_; }

  // --- Querying -------------------------------------------------------------

  /// Issues a keyword query. On a leaf it is sent to the primary parent
  /// ultrapeer, which executes it (flooding or dynamic querying per
  /// config); on an ultrapeer it is executed directly. Hits stream into
  /// `callback` until EndQuery. Returns the query GUID.
  Guid StartQuery(const std::string& text, ResultCallback callback);

  /// Stops collecting results for a locally issued query.
  void EndQuery(Guid guid);

  /// True while the dynamic-query controller for `guid` is still widening.
  bool QueryActive(Guid guid) const;

  // --- Auxiliary protocol APIs ---------------------------------------------

  /// Fetches the files shared by `target` (Gnutella BrowseHost).
  void BrowseHost(sim::HostId target, BrowseCallback callback);

  /// Asks `target` for its neighbor list (crawler support).
  void CrawlPeer(sim::HostId target, CrawlCallback callback);

  // --- Hybrid integration hooks ---------------------------------------------

  void SetQueryObserver(QueryObserver observer) {
    query_observer_ = std::move(observer);
  }
  void SetHitObserver(HitObserver observer) {
    hit_observer_ = std::move(observer);
  }

  const KeywordIndex& index() const { return index_; }

  // --- sim::Host -------------------------------------------------------------
  void HandleMessage(sim::HostId from, const sim::Message& msg) override;

 private:
  struct QueryBody {
    Guid guid;
    uint8_t ttl;
    uint8_t hops;
    std::string text;
  };
  struct QueryHitBody {
    Guid guid;
    std::vector<QueryResult> results;
  };
  struct LeafQueryBody {
    Guid guid;
    std::string text;
  };
  struct LeafPublishBody {
    std::vector<SharedFile> files;
  };
  struct LeafBloomBody {
    BloomFilter keywords;
    size_t file_count;
  };
  struct LeafForwardBody {
    Guid guid;
    std::string text;
  };
  struct BrowseReqBody {
    uint64_t req_id;
  };
  struct BrowseReplyBody {
    uint64_t req_id;
    std::vector<SharedFile> files;
  };

  struct LocalQuery {
    ResultCallback callback;
    std::unordered_set<uint64_t> seen_file_ids;
  };

  /// Dynamic-query controller state (lives at the query-root ultrapeer).
  struct DqState {
    std::string text;
    size_t results = 0;
    std::vector<sim::HostId> pending_neighbors;  // not yet queried
    sim::EventId tick = sim::kInvalidEventId;
  };

  static size_t QueryWireBytes(const QueryBody& q) {
    return 23 + 2 + q.text.size();  // Gnutella header + min speed + text
  }
  static size_t HitWireBytes(const QueryHitBody& h);

  void ExecuteQueryAsRoot(Guid guid, const std::string& text);
  void BeginDynamicQuery(Guid guid, const std::string& text);
  void FloodQuery(const QueryBody& q, sim::HostId exclude);
  void SendQueryTo(sim::HostId neighbor, Guid guid, const std::string& text,
                   uint8_t ttl);
  void MatchLocally(Guid guid, const std::string& text, sim::HostId reply_to);
  void DeliverOrForwardHit(Guid guid, std::vector<QueryResult> results);
  void DynamicTick(Guid guid);
  void RememberGuid(Guid guid, sim::HostId from);
  bool SeenGuid(Guid guid) const { return seen_guids_.count(guid) > 0; }

  sim::Network* network_;
  Role role_;
  const GnutellaConfig* config_;
  GnutellaMetrics* metrics_;
  sim::HostId host_;
  Rng rng_;

  std::vector<SharedFile> files_;
  KeywordIndex index_;

  std::vector<sim::HostId> up_neighbors_;  // ultrapeer ↔ ultrapeer
  std::vector<sim::HostId> parents_;       // leaf → ultrapeers
  std::vector<sim::HostId> leaf_hosts_;    // ultrapeer → leaves
  // QRP mode: per-leaf keyword Bloom filters instead of full file lists.
  std::unordered_map<sim::HostId, BloomFilter> leaf_blooms_;

  std::unordered_set<Guid> seen_guids_;
  std::unordered_map<Guid, sim::HostId> guid_routes_;
  std::deque<Guid> guid_fifo_;  // eviction order for the two maps above

  std::unordered_map<Guid, LocalQuery> local_queries_;
  std::unordered_map<Guid, DqState> dq_states_;

  uint64_t next_req_id_ = 1;
  std::unordered_map<uint64_t, BrowseCallback> pending_browses_;
  std::unordered_map<uint64_t, CrawlCallback> pending_crawls_;

  QueryObserver query_observer_;
  HitObserver hit_observer_;
};

}  // namespace pierstack::gnutella
