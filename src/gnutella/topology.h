// GnutellaNetwork: builds and owns a whole simulated Gnutella deployment.
//
// Reproduces the topology the paper's crawl observed (Section 4.1):
// ultrapeers form a random graph of configurable degree (32 for new
// LimeWire, 6 for old), each supporting up to 30 (or 75) leaves; leaves
// attach to a few ultrapeers and publish their file lists.
#pragma once

#include <memory>
#include <vector>

#include "gnutella/node.h"

namespace pierstack::gnutella {

/// Parameters of a generated deployment.
struct TopologyConfig {
  size_t num_ultrapeers = 200;
  size_t num_leaves = 2000;
  GnutellaConfig protocol;
  uint64_t seed = 1;
};

/// Owns the nodes of a simulated Gnutella network.
class GnutellaNetwork {
 public:
  /// Creates nodes and wires the topology. Leaf file publishing happens via
  /// protocol messages: call `network->executor()->Run()` (or RunFor) once
  /// after construction — and after assigning files — to settle.
  GnutellaNetwork(sim::Network* network, const TopologyConfig& config);

  size_t num_ultrapeers() const { return ultrapeers_.size(); }
  size_t num_leaves() const { return leaves_.size(); }
  size_t size() const { return ultrapeers_.size() + leaves_.size(); }

  GnutellaNode* ultrapeer(size_t i) { return ultrapeers_[i].get(); }
  GnutellaNode* leaf(size_t i) { return leaves_[i].get(); }

  /// Node by flat index: ultrapeers first, then leaves.
  GnutellaNode* node(size_t i) {
    return i < ultrapeers_.size() ? ultrapeers_[i].get()
                                  : leaves_[i - ultrapeers_.size()].get();
  }

  /// The node owning a given sim host id, or nullptr.
  GnutellaNode* by_host(sim::HostId host) const;

  GnutellaMetrics& metrics() { return metrics_; }
  const TopologyConfig& config() const { return config_; }

  /// Re-publishes every leaf's library to its ultrapeers (after a bulk
  /// SetSharedFiles pass) and reindexes ultrapeer libraries.
  void PublishAllFiles();

 private:
  sim::Network* network_;
  TopologyConfig config_;
  GnutellaMetrics metrics_;
  std::vector<std::unique_ptr<GnutellaNode>> ultrapeers_;
  std::vector<std::unique_ptr<GnutellaNode>> leaves_;
  std::vector<GnutellaNode*> by_host_;  // dense map HostId -> node
};

}  // namespace pierstack::gnutella
