#include "workload/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/tokenizer.h"
#include "common/zipf.h"

namespace pierstack::workload {

namespace {

/// Samples `count` distinct term ranks by popularity.
std::vector<size_t> SampleDistinctRanks(const Vocabulary& vocab, size_t count,
                                        Rng* rng) {
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  size_t guard = 0;
  while (out.size() < count && guard < count * 50) {
    ++guard;
    size_t r = vocab.SampleRank(rng);
    if (chosen.insert(r).second) out.push_back(r);
  }
  // Fallback for pathological configs: fill sequentially.
  size_t next = 0;
  while (out.size() < count && next < vocab.size()) {
    if (chosen.insert(next).second) out.push_back(next);
    ++next;
  }
  return out;
}

}  // namespace

Trace GenerateTrace(const WorkloadConfig& config) {
  assert(config.num_nodes >= 2);
  assert(config.num_distinct_files >= 1);
  Trace trace;
  trace.config = config;
  Rng rng(config.seed);

  Vocabulary vocab(config.vocab_size, config.vocab_alpha, rng.Next());

  uint64_t max_replicas =
      config.max_replicas > 0 ? config.max_replicas : config.num_nodes / 4;
  max_replicas = std::max<uint64_t>(1, std::min<uint64_t>(
                                           max_replicas, config.num_nodes));
  PowerLawSampler replica_dist(1, max_replicas, config.replica_alpha);

  // --- Distinct files -----------------------------------------------------
  std::unordered_set<std::string> filenames_seen;
  trace.files.reserve(config.num_distinct_files);
  Rng file_rng = rng.Fork();
  while (trace.files.size() < config.num_distinct_files) {
    size_t nterms = config.min_terms_per_file +
                    file_rng.NextBelow(config.max_terms_per_file -
                                       config.min_terms_per_file + 1);
    auto ranks = SampleDistinctRanks(vocab, nterms, &file_rng);
    std::string name;
    for (size_t i = 0; i < ranks.size(); ++i) {
      if (i) name.push_back(' ');
      name += vocab.term(ranks[i]);
    }
    name += ".mp3";
    if (!filenames_seen.insert(name).second) continue;  // regenerate dup
    TraceFile f;
    f.id = static_cast<uint32_t>(trace.files.size());
    f.keywords = ExtractUniqueKeywords(name);
    f.filename = std::move(name);
    f.replicas = static_cast<uint32_t>(replica_dist.Sample(&file_rng));
    trace.files.push_back(std::move(f));
  }

  // --- Placement ----------------------------------------------------------
  trace.node_files.assign(config.num_nodes, {});
  Rng place_rng = rng.Fork();
  for (const auto& f : trace.files) {
    auto nodes =
        place_rng.SampleWithoutReplacement(config.num_nodes, f.replicas);
    for (size_t n : nodes) trace.node_files[n].push_back(f.id);
    trace.total_copies += f.replicas;
  }

  // --- Queries --------------------------------------------------------------
  TraceIndex index(trace.files);
  // Popularity-biased file sampler: weight ∝ replicas^bias.
  std::vector<double> weights(trace.files.size());
  double total_weight = 0;
  for (size_t i = 0; i < trace.files.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(trace.files[i].replicas),
                          config.query_file_bias);
    total_weight += weights[i];
  }
  std::vector<double> cum(weights.size());
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total_weight;
    cum[i] = acc;
  }
  if (!cum.empty()) cum.back() = 1.0;

  Rng query_rng = rng.Fork();
  trace.queries.reserve(config.num_queries);
  std::unordered_set<std::string> query_seen;
  size_t guard = 0;
  while (trace.queries.size() < config.num_queries &&
         guard < config.num_queries * 100) {
    ++guard;
    double mix = query_rng.NextDouble();
    std::vector<std::string> terms;
    if (mix < config.query_from_file && !trace.files.empty()) {
      // A run of consecutive keywords from a (popularity-biased) file.
      double u = query_rng.NextDouble();
      size_t fi = static_cast<size_t>(
          std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
      fi = std::min(fi, trace.files.size() - 1);
      const auto& kw = trace.files[fi].keywords;
      if (kw.empty()) continue;
      size_t want = 1 + query_rng.NextBelow(
                            std::min(config.max_terms_per_query, kw.size()));
      size_t start = query_rng.NextBelow(kw.size() - want + 1);
      terms.assign(kw.begin() + static_cast<long>(start),
                   kw.begin() + static_cast<long>(start + want));
    } else if (mix < config.query_from_file + config.query_popular_terms) {
      // Globally popular terms: large result sets.
      size_t lo = std::max<size_t>(1, config.popular_query_min_terms);
      size_t want = lo + query_rng.NextBelow(2);
      auto ranks = SampleDistinctRanks(vocab, want, &query_rng);
      for (size_t r : ranks) terms.push_back(vocab.term(r));
    } else {
      // Random tail terms; conjunction rarely (often never) matches.
      size_t want = 2 + query_rng.NextBelow(2);
      for (size_t i = 0; i < want; ++i) {
        size_t r = vocab.size() / 10 +
                   query_rng.NextBelow(vocab.size() - vocab.size() / 10);
        terms.push_back(vocab.term(r));
      }
    }
    if (terms.empty()) continue;
    std::string text;
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i) text.push_back(' ');
      text += terms[i];
    }
    if (!query_seen.insert(text).second) continue;  // distinct queries only
    TraceQuery q;
    q.text = std::move(text);
    q.matches = index.Match(terms);
    q.terms = std::move(terms);
    for (uint32_t m : q.matches) q.total_results += trace.files[m].replicas;
    trace.queries.push_back(std::move(q));
  }
  return trace;
}

double Trace::CopiesFractionAtOrBelow(uint32_t replica_threshold) const {
  if (total_copies == 0) return 0.0;
  uint64_t covered = 0;
  for (const auto& f : files) {
    if (f.replicas <= replica_threshold) covered += f.replicas;
  }
  return static_cast<double>(covered) / static_cast<double>(total_copies);
}

std::vector<uint32_t> Trace::QueriedFileUniverse() const {
  std::vector<bool> in(files.size(), false);
  for (const auto& q : queries) {
    for (uint32_t m : q.matches) in[m] = true;
  }
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < files.size(); ++i) {
    if (in[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::string> Trace::FilenamesOfNode(size_t node) const {
  std::vector<std::string> out;
  out.reserve(node_files[node].size());
  for (uint32_t id : node_files[node]) out.push_back(files[id].filename);
  return out;
}

TraceIndex::TraceIndex(const std::vector<TraceFile>& files) {
  for (const auto& f : files) {
    for (const auto& t : f.keywords) postings_[t].push_back(f.id);
  }
}

std::vector<uint32_t> TraceIndex::Match(
    const std::vector<std::string>& terms) const {
  std::vector<uint32_t> result;
  if (terms.empty()) return result;
  // Smallest posting list first.
  std::vector<const std::vector<uint32_t>*> lists;
  for (const auto& t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  result = *lists[0];
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    std::vector<uint32_t> next;
    std::set_intersection(result.begin(), result.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    result = std::move(next);
  }
  return result;
}

size_t TraceIndex::PostingSize(const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second.size();
}

}  // namespace pierstack::workload
