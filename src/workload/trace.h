// Synthetic Gnutella trace generator.
//
// Replaces the paper's captured traces (Section 4.2: 700 replayed queries,
// 315,546 result files on 75,129 nodes) with a seeded generator whose
// marginal statistics are calibrated to the published numbers:
//  * long-tailed replica distribution — with the default replica_alpha,
//    copies of single-replica files are ~23% of all copies (Figure 10's
//    "replica threshold 1 ⇒ 23% published"),
//  * a query mix whose ground-truth result sizes span 0..10^3+ with a
//    heavy low end (Figures 5/6),
//  * filenames of 3–7 Zipf-popular terms (the trace's 38.9k distinct terms
//    and 193k distinct adjacent pairs, proportionally).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "workload/vocabulary.h"

namespace pierstack::workload {

/// Generator parameters. Defaults produce a ~20k-node network in the same
/// proportions as the paper's measured trace.
struct WorkloadConfig {
  size_t num_nodes = 20000;
  size_t num_distinct_files = 30000;
  /// P(replicas = r) ∝ r^-replica_alpha over [1, max_replicas].
  double replica_alpha = 2.2;
  /// 0 = auto (num_nodes / 4).
  uint64_t max_replicas = 0;

  size_t vocab_size = 12000;
  double vocab_alpha = 0.95;
  size_t min_terms_per_file = 3;
  size_t max_terms_per_file = 7;

  size_t num_queries = 700;
  /// Query mix: drawn from a file's keywords / popular vocabulary terms /
  /// random tail combinations (often no match).
  double query_from_file = 0.82;
  double query_popular_terms = 0.12;
  /// Bias of file choice by popularity: weight ∝ replicas^query_file_bias.
  double query_file_bias = 0.55;
  size_t max_terms_per_query = 3;
  /// Minimum terms of popular-vocabulary queries (1 = allow single hot
  /// terms, which match very large, mostly-rare result sets).
  size_t popular_query_min_terms = 1;

  uint64_t seed = 42;
};

/// One distinct file of the trace.
struct TraceFile {
  uint32_t id = 0;  ///< Index into Trace::files.
  std::string filename;
  std::vector<std::string> keywords;  ///< Unique, index-ready terms.
  uint32_t replicas = 0;              ///< Copies in the network.
};

/// One query with its ground truth.
struct TraceQuery {
  std::string text;
  std::vector<std::string> terms;
  std::vector<uint32_t> matches;  ///< Distinct files matching all terms.
  uint64_t total_results = 0;     ///< Σ replicas over matches.
};

/// A complete generated trace.
struct Trace {
  WorkloadConfig config;
  std::vector<TraceFile> files;
  std::vector<TraceQuery> queries;
  /// node -> distinct-file ids placed there (each file appears at most once
  /// per node, matching the paper's model assumptions).
  std::vector<std::vector<uint32_t>> node_files;
  uint64_t total_copies = 0;

  /// Fraction of copies whose file has replicas <= threshold — the paper's
  /// "publishing overhead (% items)" for the Perfect scheme (Figure 10).
  double CopiesFractionAtOrBelow(uint32_t replica_threshold) const;

  /// Distinct files appearing in at least one query's ground truth — the
  /// universe the paper's Section 6 analysis is computed over.
  std::vector<uint32_t> QueriedFileUniverse() const;

  /// Per-node filename lists, for loading simulators.
  std::vector<std::string> FilenamesOfNode(size_t node) const;
};

/// Generates a trace; deterministic in config.seed.
Trace GenerateTrace(const WorkloadConfig& config);

/// Inverted index over a trace's distinct files, used for ground-truth
/// matching and by the rare-item schemes.
class TraceIndex {
 public:
  explicit TraceIndex(const std::vector<TraceFile>& files);

  /// Files whose keyword set contains every term (exact-token conjunctive
  /// match, the experiments' matching rule).
  std::vector<uint32_t> Match(const std::vector<std::string>& terms) const;

  size_t PostingSize(const std::string& term) const;

 private:
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
};

}  // namespace pierstack::workload
