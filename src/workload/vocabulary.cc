#include "workload/vocabulary.h"

#include <unordered_set>

#include "common/tokenizer.h"

namespace pierstack::workload {

namespace {

std::string MakeWord(Rng* rng) {
  static constexpr char kConsonants[] = "bcdfghjklmnprstvz";
  static constexpr char kVowels[] = "aeiou";
  size_t syllables = 2 + rng->NextBelow(3);  // 2..4
  std::string w;
  for (size_t s = 0; s < syllables; ++s) {
    w.push_back(kConsonants[rng->NextBelow(sizeof(kConsonants) - 1)]);
    w.push_back(kVowels[rng->NextBelow(sizeof(kVowels) - 1)]);
  }
  return w;
}

}  // namespace

Vocabulary::Vocabulary(size_t size, double alpha, uint64_t seed)
    : zipf_(size, alpha) {
  Rng rng(seed);
  std::unordered_set<std::string> used;
  const auto& stop = DefaultStopWords();
  terms_.reserve(size);
  while (terms_.size() < size) {
    std::string w = MakeWord(&rng);
    if (stop.count(w)) continue;
    if (!used.insert(w).second) continue;
    terms_.push_back(std::move(w));
  }
}

}  // namespace pierstack::workload
