// Vocabulary: deterministic synthetic term universe for filenames.
//
// Terms are pronounceable CV-syllable words ("mora", "tedalu", ...) with a
// Zipf popularity over ranks, mirroring real filesharing vocabularies
// (a few hot terms — artist names, formats — and a long tail). The paper's
// trace had 38,900 distinct terms over 315,546 files; the generator's
// defaults land in the same regime proportionally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace pierstack::workload {

class Vocabulary {
 public:
  /// Generates `size` distinct terms; `alpha` sets the Zipf skew of
  /// popularity by rank.
  Vocabulary(size_t size, double alpha, uint64_t seed);

  size_t size() const { return terms_.size(); }
  const std::string& term(size_t rank) const { return terms_[rank]; }

  /// Samples a term rank by popularity.
  size_t SampleRank(Rng* rng) const { return zipf_.Sample(rng); }

  /// Popularity mass of a rank.
  double Pmf(size_t rank) const { return zipf_.Pmf(rank); }

  const std::vector<std::string>& terms() const { return terms_; }

 private:
  std::vector<std::string> terms_;
  ZipfSampler zipf_;
};

}  // namespace pierstack::workload
