#include "hybrid/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hybrid/schemes.h"

namespace pierstack::hybrid {

uint32_t SampleFoundReplicas(Rng* rng, uint64_t num_nodes, uint32_t replicas,
                             uint64_t horizon) {
  assert(horizon <= num_nodes);
  if (replicas == 0 || horizon == 0) return 0;
  if (horizon == num_nodes) return replicas;
  if (replicas > 2000) {
    // Normal approximation of the hypergeometric for very popular files;
    // their recall contribution is dominated by the mean anyway.
    double n = static_cast<double>(num_nodes);
    double p = static_cast<double>(horizon) / n;
    double r = static_cast<double>(replicas);
    double mean = r * p;
    double var = r * p * (1 - p) * (n - r) / (n - 1);
    double draw = mean + rng->NextGaussian() * std::sqrt(std::max(0.0, var));
    double cap = std::min(r, static_cast<double>(horizon));
    return static_cast<uint32_t>(std::clamp(draw, 0.0, cap) + 0.5);
  }
  // Exact urn draws: place each replica on a distinct node; it falls in
  // the horizon with probability (horizon - placed_in) / (nodes - placed).
  uint64_t in_horizon = 0;
  for (uint32_t j = 0; j < replicas; ++j) {
    double p = static_cast<double>(horizon - in_horizon) /
               static_cast<double>(num_nodes - j);
    if (rng->NextBernoulli(p)) ++in_horizon;
  }
  return static_cast<uint32_t>(in_horizon);
}

EvalResult EvaluateHybrid(const workload::Trace& trace,
                          const std::vector<bool>& published,
                          const EvalConfig& config) {
  EvalResult result;
  result.published_copies_fraction =
      PublishedCopiesFraction(trace, published);

  uint64_t n = trace.config.num_nodes;
  uint64_t horizon = static_cast<uint64_t>(
      config.horizon_fraction * static_cast<double>(n) + 0.5);
  horizon = std::min(horizon, n);
  Rng rng(config.seed);

  double qr_sum = 0, qdr_sum = 0;
  double empty_g = 0, empty_h = 0;
  size_t evaluated = 0;
  for (const auto& q : trace.queries) {
    if (q.total_results == 0) continue;
    ++evaluated;
    uint64_t pub_copies = 0;
    for (uint32_t m : q.matches) {
      if (published[m]) pub_copies += trace.files[m].replicas;
    }
    double qr_trials = 0, qdr_trials = 0, eg_trials = 0, eh_trials = 0;
    for (int t = 0; t < config.trials_per_query; ++t) {
      uint64_t found_copies = 0;
      size_t found_distinct = 0;
      bool gnutella_any = false;
      for (uint32_t m : q.matches) {
        uint32_t f = SampleFoundReplicas(&rng, n, trace.files[m].replicas,
                                         horizon);
        if (f > 0) {
          gnutella_any = true;
          found_copies += f;
          ++found_distinct;
        } else if (published[m]) {
          // Per-item DHT fallback (Equation 1's PNF_g * PF_DHT term): a
          // published item missed by the flood is recovered from the
          // partial index, all replicas included.
          found_copies += trace.files[m].replicas;
          ++found_distinct;
        }
      }
      if (!gnutella_any) {
        eg_trials += 1;
        if (pub_copies == 0) eh_trials += 1;
      }
      qr_trials += static_cast<double>(found_copies) /
                   static_cast<double>(q.total_results);
      qdr_trials += static_cast<double>(found_distinct) /
                    static_cast<double>(q.matches.size());
    }
    qr_sum += qr_trials / config.trials_per_query;
    qdr_sum += qdr_trials / config.trials_per_query;
    empty_g += eg_trials / config.trials_per_query;
    empty_h += eh_trials / config.trials_per_query;
  }
  if (evaluated > 0) {
    result.avg_query_recall = qr_sum / static_cast<double>(evaluated);
    result.avg_query_distinct_recall = qdr_sum / static_cast<double>(evaluated);
    result.empty_fraction_gnutella = empty_g / static_cast<double>(evaluated);
    result.empty_fraction_hybrid = empty_h / static_cast<double>(evaluated);
  }
  result.queries_evaluated = evaluated;
  return result;
}

}  // namespace pierstack::hybrid
