// HybridUltrapeer: the Figure 17 component stack on one node —
// a LimeWire-style ultrapeer, the Gnutella proxy, and a PIERSearch client
// (publisher + search engine) attached to a DHT node.
//
// Wiring (paper Section 7):
//  * the ultrapeer snoops queries and query results from its regular
//    Gnutella traffic;
//  * results belonging to queries with fewer than `qrs_threshold` results
//    are identified as rare (the QRS scheme) and handed to the publisher;
//  * leaf queries that return no results within `gnutella_timeout` are
//    re-issued through PIERSearch.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_set>

#include "gnutella/node.h"
#include "piersearch/publisher.h"
#include "piersearch/search_engine.h"

namespace pierstack::hybrid {

struct HybridConfig {
  /// Reissue via PIERSearch when Gnutella returned nothing for this long.
  sim::SimTime gnutella_timeout = 30 * sim::kSecond;
  /// QRS rare-item rule: results of queries with fewer results than this
  /// are published (paper: 20).
  size_t qrs_threshold = 20;
  piersearch::PublishOptions publish;
  piersearch::SearchOptions search;
  /// Applied to every reissued query's compiled plan before execution —
  /// the deployment hook for reshaping DHT fallback queries (tighter
  /// limits, TopK by file size, extra pushed-down filters) without
  /// touching the search engine. Runs after the posting-size rewrite.
  std::function<void(pier::QueryPlan*)> plan_rewrite;
};

/// Counters for one hybrid ultrapeer.
struct HybridStats {
  uint64_t hybrid_queries = 0;       ///< Queries issued through the proxy.
  uint64_t gnutella_answered = 0;    ///< Answered by flooding in time.
  uint64_t dht_reissued = 0;         ///< Fell back to PIERSearch.
  uint64_t dht_answered = 0;         ///< PIERSearch returned >= 1 result.
  uint64_t dht_partial = 0;          ///< Reissues that settled inexact.
  uint64_t rare_results_published = 0;  ///< QRS-published result records.
};

/// Combined result stream of a hybrid query.
struct HybridHit {
  uint64_t file_id = 0;
  std::string filename;
  uint64_t size_bytes = 0;
  uint32_t address = 0;
  bool via_dht = false;
  sim::SimTime arrival = 0;
};

class HybridUltrapeer {
 public:
  /// Hits stream in as they arrive; `done` fires when the query settles
  /// (Gnutella answered, or the DHT fallback completed).
  using HitCallback = std::function<void(const HybridHit&)>;
  using DoneCallback = std::function<void()>;

  HybridUltrapeer(gnutella::GnutellaNode* ultrapeer, pier::PierNode* pier,
                  const HybridConfig& config);

  /// Issues a query as one of this ultrapeer's leaves would: Gnutella
  /// first, PIERSearch on timeout.
  void Query(const std::string& text, HitCallback on_hit,
             DoneCallback done = nullptr);

  /// Proactively publishes this ultrapeer's own and leaf-published files
  /// that `is_rare` accepts — the full-deployment variant where each
  /// ultrapeer indexes rare files for itself and its leaves.
  size_t PublishLocalFiles(
      const std::function<bool(const gnutella::KeywordIndex::Entry&)>&
          is_rare);

  gnutella::GnutellaNode* ultrapeer() { return up_; }
  piersearch::Publisher& publisher() { return publisher_; }
  piersearch::SearchEngine& search_engine() { return engine_; }
  const HybridStats& stats() const { return stats_; }

 private:
  void OnSnoopedHits(gnutella::Guid guid,
                     const std::vector<gnutella::QueryResult>& results,
                     size_t results_so_far);

  gnutella::GnutellaNode* up_;
  pier::PierNode* pier_;
  HybridConfig config_;
  piersearch::Publisher publisher_;
  piersearch::SearchEngine engine_;
  HybridStats stats_;

  /// Running result counts for snooped GUIDs (QRS bookkeeping).
  std::map<gnutella::Guid, size_t> snooped_counts_;
  std::unordered_set<uint64_t> published_file_ids_;
};

}  // namespace pierstack::hybrid
