#include "hybrid/schemes.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/tokenizer.h"

namespace pierstack::hybrid {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> PerfectScheme::Scores(const workload::Trace& trace) {
  std::vector<double> scores(trace.files.size());
  for (size_t i = 0; i < trace.files.size(); ++i) {
    scores[i] = static_cast<double>(trace.files[i].replicas);
  }
  return scores;
}

std::vector<double> RandomScheme::Scores(const workload::Trace& trace) {
  Rng rng(seed_);
  std::vector<double> scores(trace.files.size());
  for (auto& s : scores) s = rng.NextDouble();
  return scores;
}

std::vector<double> QrsScheme::Scores(const workload::Trace& trace) {
  std::vector<double> scores(trace.files.size(), kNever);
  for (const auto& q : trace.queries) {
    for (uint32_t m : q.matches) {
      scores[m] = std::min(scores[m], static_cast<double>(q.total_results));
    }
  }
  return scores;
}

std::vector<double> TermFrequencyScheme::Scores(
    const workload::Trace& trace) {
  // Result-stream term statistics: each file appears in traffic in
  // proportion to its replication, so a term's observed count is the sum
  // of replicas over files containing it.
  std::unordered_map<std::string, double> freq;
  for (const auto& f : trace.files) {
    for (const auto& t : f.keywords) {
      freq[t] += static_cast<double>(f.replicas);
    }
  }
  std::vector<double> scores(trace.files.size(), kNever);
  for (size_t i = 0; i < trace.files.size(); ++i) {
    for (const auto& t : trace.files[i].keywords) {
      scores[i] = std::min(scores[i], freq[t]);
    }
  }
  return scores;
}

std::vector<double> TermPairFrequencyScheme::Scores(
    const workload::Trace& trace) {
  std::unordered_map<std::string, double> pair_freq;
  std::unordered_map<std::string, double> term_freq;
  for (const auto& f : trace.files) {
    for (const auto& p : AdjacentTermPairs(f.keywords)) {
      pair_freq[p] += static_cast<double>(f.replicas);
    }
    for (const auto& t : f.keywords) {
      term_freq[t] += static_cast<double>(f.replicas);
    }
  }
  std::vector<double> scores(trace.files.size(), kNever);
  for (size_t i = 0; i < trace.files.size(); ++i) {
    const auto& kw = trace.files[i].keywords;
    auto pairs = AdjacentTermPairs(kw);
    if (pairs.empty()) {
      // Single-keyword file: only term statistics exist for it.
      for (const auto& t : kw) {
        scores[i] = std::min(scores[i], term_freq[t]);
      }
      continue;
    }
    for (const auto& p : pairs) {
      scores[i] = std::min(scores[i], pair_freq[p]);
    }
  }
  return scores;
}

std::string SamplingScheme::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "SAM(%d%%)",
                static_cast<int>(fraction_ * 100 + 0.5));
  return buf;
}

std::vector<double> SamplingScheme::Scores(const workload::Trace& trace) {
  Rng rng(seed_);
  size_t n = trace.node_files.size();
  size_t sample_size = static_cast<size_t>(fraction_ * static_cast<double>(n));
  std::vector<double> scores(trace.files.size(), 0.0);
  if (sample_size == 0) {
    // Sampling nothing: no information; degenerate to a random order.
    for (auto& s : scores) s = rng.NextDouble();
    return scores;
  }
  if (sample_size > n) sample_size = n;
  auto sampled = rng.SampleWithoutReplacement(n, sample_size);
  for (size_t node : sampled) {
    for (uint32_t f : trace.node_files[node]) {
      scores[f] += 1.0;  // replicas observed within the sample
    }
  }
  return scores;
}

std::vector<bool> SelectByBudget(const workload::Trace& trace,
                                 const std::vector<double>& scores,
                                 double budget_copies_fraction) {
  auto universe = trace.QueriedFileUniverse();
  uint64_t universe_copies = 0;
  for (uint32_t f : universe) universe_copies += trace.files[f].replicas;
  uint64_t budget_copies = static_cast<uint64_t>(
      budget_copies_fraction * static_cast<double>(universe_copies));

  std::vector<uint32_t> order(universe);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });

  std::vector<bool> published(trace.files.size(), false);
  uint64_t used = 0;
  for (uint32_t f : order) {
    if (scores[f] == std::numeric_limits<double>::infinity()) break;
    uint64_t r = trace.files[f].replicas;
    if (used + r > budget_copies) break;
    published[f] = true;
    used += r;
  }
  return published;
}

std::vector<bool> SelectByThreshold(const std::vector<double>& scores,
                                    double threshold) {
  std::vector<bool> published(scores.size(), false);
  for (size_t i = 0; i < scores.size(); ++i) {
    published[i] = scores[i] <= threshold;
  }
  return published;
}

double PublishedCopiesFraction(const workload::Trace& trace,
                               const std::vector<bool>& published) {
  auto universe = trace.QueriedFileUniverse();
  uint64_t total = 0, pub = 0;
  for (uint32_t f : universe) {
    total += trace.files[f].replicas;
    if (published[f]) pub += trace.files[f].replicas;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(pub) / static_cast<double>(total);
}

}  // namespace pierstack::hybrid
