#include "hybrid/hybrid_ultrapeer.h"

namespace pierstack::hybrid {

using gnutella::Guid;
using gnutella::QueryResult;

HybridUltrapeer::HybridUltrapeer(gnutella::GnutellaNode* ultrapeer,
                                 pier::PierNode* pier,
                                 const HybridConfig& config)
    : up_(ultrapeer),
      pier_(pier),
      config_(config),
      publisher_(pier),
      engine_(pier) {
  // The proxy: snoop the query-result traffic this ultrapeer forwards.
  up_->SetHitObserver([this](Guid guid,
                             const std::vector<QueryResult>& results,
                             size_t so_far) {
    OnSnoopedHits(guid, results, so_far);
  });
}

void HybridUltrapeer::OnSnoopedHits(Guid guid,
                                    const std::vector<QueryResult>& results,
                                    size_t results_so_far) {
  // Track per-GUID counts; `results_so_far` is authoritative for queries
  // rooted here, otherwise accumulate what we forward.
  size_t& count = snooped_counts_[guid];
  count = std::max(count + results.size(),
                   results_so_far > 0 ? results_so_far : size_t{0});
  if (count >= config_.qrs_threshold) return;
  // QRS: these results belong (so far) to a small result set — publish
  // them into the DHT as rare items, in one batch per snoop event. The
  // tuples land in PierNode's standing rehash queues, so consecutive snoop
  // events coalesce into shared PutBatch messages across calls too.
  std::vector<piersearch::FileToPublish> files;
  files.reserve(results.size());
  for (const auto& r : results) {
    if (!published_file_ids_.insert(r.file_id).second) continue;
    files.push_back(piersearch::FileToPublish{r.filename, r.size_bytes,
                                              r.owner, /*port=*/6346});
  }
  if (!files.empty()) {
    publisher_.PublishFiles(files, config_.publish);
    stats_.rare_results_published += files.size();
  }
  // Bound the bookkeeping.
  if (snooped_counts_.size() > 100000) {
    snooped_counts_.erase(snooped_counts_.begin());
  }
}

void HybridUltrapeer::Query(const std::string& text, HitCallback on_hit,
                            DoneCallback done) {
  ++stats_.hybrid_queries;
  sim::Executor* simulator = pier_->dht()->network()->executor();
  struct QueryState {
    size_t gnutella_results = 0;
    bool fell_back = false;
    bool finished = false;
  };
  auto state = std::make_shared<QueryState>();

  Guid guid = up_->StartQuery(
      text, [this, state, on_hit, simulator](
                const std::vector<QueryResult>& results) {
        if (state->fell_back) return;  // late hits after the DHT took over
        state->gnutella_results += results.size();
        for (const auto& r : results) {
          HybridHit h;
          h.file_id = r.file_id;
          h.filename = r.filename;
          h.size_bytes = r.size_bytes;
          h.address = r.owner;
          h.via_dht = false;
          h.arrival = simulator->now();
          on_hit(h);
        }
      });

  simulator->ScheduleAfter(
      pier_->dht()->host(), config_.gnutella_timeout,
      [this, state, guid, text, on_hit, done, simulator]() {
        if (state->finished) return;
        if (state->gnutella_results > 0) {
          ++stats_.gnutella_answered;
          state->finished = true;
          up_->EndQuery(guid);
          if (done) done();
          return;
        }
        // Timed out with nothing: re-issue through PIERSearch, letting the
        // deployment's plan hook reshape the compiled query plan.
        state->fell_back = true;
        ++stats_.dht_reissued;
        up_->EndQuery(guid);
        piersearch::SearchOptions search = config_.search;
        if (config_.plan_rewrite) search.plan_rewrite = config_.plan_rewrite;
        engine_.Search(
            text, search,
            [this, state, on_hit, done, simulator](
                Status s, std::vector<piersearch::SearchHit> hits,
                const pier::Completeness& completeness) {
              state->finished = true;
              // A timed-out or shed reissue can still carry hits; count
              // them as answered and track the inexact settle instead of
              // treating any non-OK status as a total miss.
              (void)s;
              if (!hits.empty()) ++stats_.dht_answered;
              if (!completeness.exact) ++stats_.dht_partial;
              for (const auto& r : hits) {
                HybridHit h;
                h.file_id = r.file_id;
                h.filename = r.filename;
                h.size_bytes = r.size_bytes;
                h.address = r.address;
                h.via_dht = true;
                h.arrival = simulator->now();
                on_hit(h);
              }
              if (done) done();
            });
      });
}

size_t HybridUltrapeer::PublishLocalFiles(
    const std::function<bool(const gnutella::KeywordIndex::Entry&)>&
        is_rare) {
  // Collect the whole rare set first so the publisher can coalesce all
  // same-keyword tuples into per-destination batch messages.
  std::vector<piersearch::FileToPublish> files;
  for (const auto* entry : up_->index().AllEntries()) {
    if (!is_rare(*entry)) continue;
    if (!published_file_ids_.insert(entry->file_id).second) continue;
    files.push_back(piersearch::FileToPublish{
        entry->filename, entry->size_bytes, entry->owner, /*port=*/6346});
  }
  publisher_.PublishFiles(files, config_.publish);
  stats_.rare_results_published += files.size();
  return files.size();
}

}  // namespace pierstack::hybrid
