// Rare-item identification schemes (paper Section 5).
//
// Every scheme assigns each distinct file a *rarity score* — lower means
// "more likely rare" — computed only from information a node could gather
// locally (term statistics from snooped result traffic, sampled neighbor
// libraries, observed query result sizes). A file is published when its
// score falls at or below a threshold; sweeping the threshold (or,
// equivalently, taking a prefix of the score-sorted files) traces the
// recall-vs-publishing-budget curves of Figures 13–15.
//
// Schemes: Perfect (true replica counts — the upper bound), Random (the
// lower bound), QRS (query-results-size caching), TF (term frequency),
// TPF (adjacent term-pair frequency), SAM (neighbor sampling).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/trace.h"

namespace pierstack::hybrid {

/// Scores every distinct file of a trace; lower = rarer.
class RareItemScheme {
 public:
  virtual ~RareItemScheme() = default;
  virtual std::string name() const = 0;

  /// One score per trace.files entry. Files scored +inf are never
  /// published (e.g. QRS's never-queried files).
  virtual std::vector<double> Scores(const workload::Trace& trace) = 0;
};

/// Perfect knowledge: score = true replica count (paper Section 6.3's
/// "Perfect" upper-bound scheme).
class PerfectScheme : public RareItemScheme {
 public:
  std::string name() const override { return "Perfect"; }
  std::vector<double> Scores(const workload::Trace& trace) override;
};

/// Random: a uniformly random score per file (the lower-bound scheme).
class RandomScheme : public RareItemScheme {
 public:
  explicit RandomScheme(uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "Random"; }
  std::vector<double> Scores(const workload::Trace& trace) override;

 private:
  uint64_t seed_;
};

/// QRS: score = the smallest observed result-set size among the (training)
/// queries whose results contain the file; +inf for never-returned files.
/// "The DHT is used to cache elements of small result sets."
class QrsScheme : public RareItemScheme {
 public:
  std::string name() const override { return "QRS"; }
  std::vector<double> Scores(const workload::Trace& trace) override;
};

/// TF: term statistics gathered from result-stream monitoring. A term's
/// observed frequency is weighted by replication (popular files appear
/// proportionally more often in result traffic); the file's score is its
/// rarest term's frequency.
class TermFrequencyScheme : public RareItemScheme {
 public:
  std::string name() const override { return "TF"; }
  std::vector<double> Scores(const workload::Trace& trace) override;
};

/// TPF: like TF but over ordered adjacent term pairs, the paper's answer
/// to rare items composed of individually popular keywords. Files with a
/// single keyword fall back to that term's frequency.
class TermPairFrequencyScheme : public RareItemScheme {
 public:
  std::string name() const override { return "TPF"; }
  std::vector<double> Scores(const workload::Trace& trace) override;
};

/// SAM: sample `sample_fraction` of the nodes and count each file's
/// replicas within the sample (a lower-bound estimate of its true
/// replication).
class SamplingScheme : public RareItemScheme {
 public:
  SamplingScheme(double sample_fraction, uint64_t seed)
      : fraction_(sample_fraction), seed_(seed) {}
  std::string name() const override;
  std::vector<double> Scores(const workload::Trace& trace) override;

 private:
  double fraction_;
  uint64_t seed_;
};

/// Publish set selection: marks files published so that the published
/// fraction of *copies* (over the queried-file universe, matching the
/// paper's result-derived item population) is as close to `budget` as the
/// score order allows. Lower scores are published first; ties are broken
/// by file id.
std::vector<bool> SelectByBudget(const workload::Trace& trace,
                                 const std::vector<double>& scores,
                                 double budget_copies_fraction);

/// Threshold form used by the live hybrid deployment: publish iff
/// score <= threshold.
std::vector<bool> SelectByThreshold(const std::vector<double>& scores,
                                    double threshold);

/// Fraction of copies (queried universe) the selection publishes.
double PublishedCopiesFraction(const workload::Trace& trace,
                               const std::vector<bool>& published);

}  // namespace pierstack::hybrid
