// Trace-driven Monte-Carlo evaluation of the hybrid system (paper
// Section 6.2/6.3; drives Figures 11–15).
//
// Model semantics (Section 6.1's assumptions): replicas are uniformly
// placed and a Gnutella query observes a uniformly random horizon of
// Nhorizon nodes. Following the model — "a query for item i is first
// issued to Gnutella; if Gnutella does not return any results, the query
// is re-issued to the DHT" — the DHT fallback applies *per item*: an item
// none of whose replicas fell in the horizon is recovered iff it is
// published. (This is what makes the paper's average QDR exactly equal
// Equation 1, as Section 6.2 notes.) A published file is fully indexed —
// every node publishes its rare items in a full deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workload/trace.h"

namespace pierstack::hybrid {

struct EvalConfig {
  double horizon_fraction = 0.05;  ///< Nhorizon / N.
  int trials_per_query = 3;        ///< Monte-Carlo repetitions.
  uint64_t seed = 7;
};

/// Averages over the trace's queries (queries with no available results
/// are excluded from the recall averages, which would be 0/0).
struct EvalResult {
  double avg_query_recall = 0;           ///< Figure 11/13 metric (QR).
  double avg_query_distinct_recall = 0;  ///< Figure 12/14 metric (QDR).
  double published_copies_fraction = 0;  ///< Figure 10 metric.
  double empty_fraction_gnutella = 0;    ///< Queries with 0 Gnutella results.
  double empty_fraction_hybrid = 0;      ///< Still 0 after the DHT fallback.
  size_t queries_evaluated = 0;
};

/// Evaluates one publish selection against the trace.
EvalResult EvaluateHybrid(const workload::Trace& trace,
                          const std::vector<bool>& published,
                          const EvalConfig& config);

/// Draws how many of `replicas` copies land inside a random
/// `horizon`-node subset of `num_nodes` nodes (hypergeometric; exact urn
/// draws for small counts, normal approximation for large ones).
uint32_t SampleFoundReplicas(Rng* rng, uint64_t num_nodes, uint32_t replicas,
                             uint64_t horizon);

}  // namespace pierstack::hybrid
