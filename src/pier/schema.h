// Schema and Tuple: PIER's relational data model (paper Section 3.1).
//
// A schema names its fields, declares their types, and designates one
// field as the DHT *publishing (index) key* — e.g. `keyword` for the
// Inverted table, `fileID` for the Item table.
//
// Tuple is a cheap handle onto a shared immutable row payload: copying a
// tuple (into join state, operator buffers, result sets) bumps a refcount
// instead of deep-copying a vector of Values. Rows are immutable once
// built, which is exactly the engine's usage — operators only ever build
// new rows.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "pier/value.h"

namespace pierstack::pier {

struct Field {
  std::string name;
  ValueType type;
};

/// Table schema. Instances are created once and shared by pointer.
class Schema {
 public:
  /// `index_field`: which field's value keys the tuple in the DHT.
  Schema(std::string table_name, std::vector<Field> fields,
         size_t index_field);

  const std::string& table_name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  size_t index_field() const { return index_field_; }
  size_t arity() const { return fields_.size(); }

  /// Index of a field by name; asserts it exists.
  size_t FieldIndex(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Field> fields_;
  size_t index_field_;
};

/// A tuple: a row of Values conforming to some schema. A Tuple is a slice
/// handle onto a shared immutable column arena: copy = refcount bump, and
/// batch decoding materializes one arena for N tuples instead of N row
/// vectors (see TupleBatch).
class Tuple {
 public:
  using Payload = std::shared_ptr<const std::vector<Value>>;

  Tuple() = default;
  explicit Tuple(std::vector<Value> values)
      : values_(std::make_shared<const std::vector<Value>>(
            std::move(values))),
        len_(static_cast<uint32_t>(values_->size())) {}

  /// A view of `len` values of a shared arena starting at `begin`. The
  /// arena stays alive as long as any slice of it does.
  static Tuple Slice(Payload arena, size_t begin, size_t len) {
    Tuple t;
    t.values_ = std::move(arena);
    t.begin_ = static_cast<uint32_t>(begin);
    t.len_ = static_cast<uint32_t>(len);
    return t;
  }

  size_t arity() const { return len_; }
  const Value& at(size_t i) const { return (*values_)[begin_ + i]; }

  /// Row span (contiguous within the arena).
  const Value* begin() const {
    return values_ ? values_->data() + begin_ : nullptr;
  }
  const Value* end() const { return begin() + len_; }

  /// The shared payload itself (sharing diagnostics, arena-style reuse).
  const Payload& payload() const { return values_; }

  /// Value of the schema's DHT index field.
  const Value& IndexValue(const Schema& schema) const {
    return at(schema.index_field());
  }

  /// The suffix of this tuple starting at column `from`, sharing the same
  /// payload (no copy) — e.g. the payload columns after a join key.
  Tuple SubTuple(size_t from) const {
    assert(from <= len_);
    Tuple t;
    t.values_ = values_;
    t.begin_ = begin_ + static_cast<uint32_t>(from);
    t.len_ = len_ - static_cast<uint32_t>(from);
    return t;
  }

  /// A compacted deep copy that owns exactly its own row: slice tuples of a
  /// large decode arena stop pinning the arena (columns and string blob)
  /// when only a few rows are retained long-term (result accumulators,
  /// caches). Cheap handle-copy semantics are preserved on the result.
  Tuple Materialize() const;

  /// left ++ right row concatenation (join output).
  static Tuple Concat(const Tuple& l, const Tuple& r);

  /// Serialized bytes (the engine's compact binary format — what PIER's
  /// Java serialization overhead is replaced with).
  std::vector<uint8_t> Serialize() const;
  void SerializeTo(BytesWriter* w) const;
  static Result<Tuple> Deserialize(const std::vector<uint8_t>& data);
  /// Streaming decode used by the batch path; `arena` receives decoded
  /// string bytes (one shared blob instead of per-string allocations).
  static Result<Tuple> DeserializeFrom(BytesReader* r,
                                       StringArena* arena = nullptr);

  /// Wire size without materializing the serialization.
  size_t WireSize() const;

  /// Field-wise rendering "(a, b, c)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    if (a.len_ != b.len_) return false;
    if (a.values_ == b.values_ && a.begin_ == b.begin_) return true;
    for (uint32_t i = 0; i < a.len_; ++i) {
      if (!(a.at(i) == b.at(i))) return false;
    }
    return true;
  }

 private:
  Payload values_;
  uint32_t begin_ = 0;  ///< Slice start within the arena.
  uint32_t len_ = 0;    ///< Row arity.
};

}  // namespace pierstack::pier
