// Schema and Tuple: PIER's relational data model (paper Section 3.1).
//
// A schema names its fields, declares their types, and designates one
// field as the DHT *publishing (index) key* — e.g. `keyword` for the
// Inverted table, `fileID` for the Item table.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "pier/value.h"

namespace pierstack::pier {

struct Field {
  std::string name;
  ValueType type;
};

/// Table schema. Instances are created once and shared by pointer.
class Schema {
 public:
  /// `index_field`: which field's value keys the tuple in the DHT.
  Schema(std::string table_name, std::vector<Field> fields,
         size_t index_field);

  const std::string& table_name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  size_t index_field() const { return index_field_; }
  size_t arity() const { return fields_.size(); }

  /// Index of a field by name; asserts it exists.
  size_t FieldIndex(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Field> fields_;
  size_t index_field_;
};

/// A tuple: a row of Values conforming to some schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Value of the schema's DHT index field.
  const Value& IndexValue(const Schema& schema) const {
    return values_[schema.index_field()];
  }

  /// Serialized bytes (the engine's compact binary format — what PIER's
  /// Java serialization overhead is replaced with).
  std::vector<uint8_t> Serialize() const;
  static Result<Tuple> Deserialize(const std::vector<uint8_t>& data);

  /// Wire size without materializing the serialization.
  size_t WireSize() const;

  /// Field-wise rendering "(a, b, c)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace pierstack::pier
