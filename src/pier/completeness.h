// Completeness accounting for distributed query results.
//
// PIER's answers are best-effort over a "dilated-reachable snapshot"
// (paper Section 4.1): a crash, straggler, or shed plan mid-query yields a
// PARTIAL answer, and the only honest contract is to label it. Every
// query-plane callback (JoinCallback / PlanCallback / FetchCallback /
// SearchCallback) therefore carries a Completeness record alongside the
// status and rows: `exact` says whether the answer set is provably the
// full one, `coverage_fraction` estimates how much of the key arcs
// actually reported, and the counters say why coverage was lost. Partial
// is an explicit outcome, never a silent one — PierMetrics counts every
// non-exact top-level result in `partial_results`.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/simulator.h"

namespace pierstack::pier {

/// How complete a query answer is, threaded from ExecStage through the
/// join/fetch callbacks up to SearchEngine results.
struct Completeness {
  /// True only when every stage and fetch leg fully reported: the answer
  /// set is the exact one the reachable snapshot defines.
  bool exact = true;
  /// Estimated fraction of the queried key arcs that reported, in [0, 1].
  /// For staged joins this is the Mattern weight fraction returned; for
  /// fetch legs the fraction of requested keys answered. Composed legs
  /// multiply (a plan is as complete as its narrowest leg).
  double coverage_fraction = 1.0;
  /// Stages whose owner never reported within the deadline (after any
  /// failover budget was spent).
  uint32_t stages_failed = 0;
  /// Stage re-dispatches to a replica set that this query performed.
  uint32_t failovers = 0;
  /// Hedged fetch legs where the backup replica answered first.
  uint32_t hedges_won = 0;
  /// Admission-control deferrals absorbed (plan retried after retry-after).
  uint32_t deferrals = 0;
  /// True when admission control refused the plan outright (no budget or
  /// no time to defer). Shed answers are empty AND labeled.
  bool shed = false;
  /// Overloaded node's back-off hint (absolute sim duration); 0 if none.
  sim::SimTime retry_after = 0;

  /// Folds another leg's completeness into this one: exactness ANDs,
  /// coverage multiplies, causes accumulate.
  void Merge(const Completeness& other) {
    exact = exact && other.exact;
    coverage_fraction *= other.coverage_fraction;
    stages_failed += other.stages_failed;
    failovers += other.failovers;
    hedges_won += other.hedges_won;
    deferrals += other.deferrals;
    shed = shed || other.shed;
    retry_after = std::max(retry_after, other.retry_after);
  }
};

}  // namespace pierstack::pier
