#include "pier/schema.h"

namespace pierstack::pier {

Schema::Schema(std::string table_name, std::vector<Field> fields,
               size_t index_field)
    : name_(std::move(table_name)),
      fields_(std::move(fields)),
      index_field_(index_field) {
  assert(index_field_ < fields_.size());
}

size_t Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  assert(false && "unknown field");
  return SIZE_MAX;
}

std::vector<uint8_t> Tuple::Serialize() const {
  BytesWriter w;
  w.PutVarint(values_.size());
  for (const auto& v : values_) v.SerializeTo(&w);
  return w.Take();
}

Result<Tuple> Tuple::Deserialize(const std::vector<uint8_t>& data) {
  BytesReader r(data);
  auto arity = r.GetVarint();
  if (!arity.ok()) return arity.status();
  // Every value costs at least one byte; a larger claimed arity is
  // corrupt input (and guards the reserve below against hostile sizes).
  if (arity.value() > r.remaining()) {
    return Status::Corruption("tuple arity exceeds payload");
  }
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(arity.value()));
  for (uint64_t i = 0; i < arity.value(); ++i) {
    auto v = Value::Deserialize(&r);
    if (!v.ok()) return v.status();
    values.push_back(std::move(v).value());
  }
  return Tuple(std::move(values));
}

size_t Tuple::WireSize() const {
  size_t n = VarintSize(values_.size());
  for (const auto& v : values_) n += v.WireSize();
  return n;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace pierstack::pier
