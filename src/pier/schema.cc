#include "pier/schema.h"

namespace pierstack::pier {

Schema::Schema(std::string table_name, std::vector<Field> fields,
               size_t index_field)
    : name_(std::move(table_name)),
      fields_(std::move(fields)),
      index_field_(index_field) {
  assert(index_field_ < fields_.size());
}

size_t Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  assert(false && "unknown field");
  return SIZE_MAX;
}

Tuple Tuple::Materialize() const {
  if (len_ == 0) return Tuple();
  std::vector<Value> values;
  values.reserve(len_);
  for (const Value& v : *this) values.push_back(v.Materialize());
  return Tuple(std::move(values));
}

Tuple Tuple::Concat(const Tuple& l, const Tuple& r) {
  std::vector<Value> vals;
  vals.reserve(l.arity() + r.arity());
  vals.insert(vals.end(), l.begin(), l.end());
  vals.insert(vals.end(), r.begin(), r.end());
  return Tuple(std::move(vals));
}

std::vector<uint8_t> Tuple::Serialize() const {
  BytesWriter w;
  SerializeTo(&w);
  return w.Take();
}

void Tuple::SerializeTo(BytesWriter* w) const {
  w->PutVarint(arity());
  for (const Value& v : *this) v.SerializeTo(w);
}

Result<Tuple> Tuple::Deserialize(const std::vector<uint8_t>& data) {
  BytesReader r(data);
  return DeserializeFrom(&r);
}

Result<Tuple> Tuple::DeserializeFrom(BytesReader* r, StringArena* arena) {
  auto arity = r->GetVarint();
  if (!arity.ok()) return arity.status();
  // Every value costs at least one byte; a larger claimed arity is
  // corrupt input (and guards the reserve below against hostile sizes).
  if (arity.value() > r->remaining()) {
    return Status::Corruption("tuple arity exceeds payload");
  }
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(arity.value()));
  for (uint64_t i = 0; i < arity.value(); ++i) {
    auto v = Value::Deserialize(r, arena);
    if (!v.ok()) return v.status();
    values.push_back(std::move(v).value());
  }
  return Tuple(std::move(values));
}

size_t Tuple::WireSize() const {
  size_t n = VarintSize(arity());
  for (const Value& v : *this) n += v.WireSize();
  return n;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < arity(); ++i) {
    if (i) out += ", ";
    out += at(i).ToString();
  }
  out += ")";
  return out;
}

}  // namespace pierstack::pier
