#include "pier/node.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "pier/tuple_batch.h"

namespace pierstack::pier {

namespace {

dht::Key DhtKeyFor(const std::string& ns, const Value& key) {
  return HashCombine(Fnv1a64(ns), key.Hash());
}

}  // namespace

/// Aggregate ack of one PublishBatch call: `remaining` counts outstanding
/// obligations — standing queues still holding this call's tuples plus
/// flushed batches not yet acked. The callback fires once, after the call
/// finished enqueuing (`armed`) and every obligation resolved. Resolutions
/// are usually asynchronous (simulator events), but a flush on a departed
/// node fails its subscribers synchronously — hence the explicit
/// fired/armed handshake instead of ordering assumptions.
struct PublishAck {
  size_t remaining = 0;
  bool armed = false;
  bool fired = false;
  Status first_error;
  dht::DhtNode::PutCallback callback;

  void Resolve(Status s) {
    if (!s.ok() && first_error.ok()) first_error = s;
    --remaining;
    MaybeFire();
  }
  void MaybeFire() {
    if (armed && !fired && remaining == 0) {
      fired = true;
      callback(first_error);
    }
  }
};

std::vector<uint8_t> EncodeJoinEntries(
    const std::vector<JoinResultEntry>& entries) {
  BytesWriter w;
  w.PutVarint(entries.size());
  for (const JoinResultEntry& e : entries) {
    w.PutVarint(1 + e.payload.arity());
    e.join_key.SerializeTo(&w);
    for (const Value& v : e.payload) v.SerializeTo(&w);
  }
  return w.Take();
}

std::vector<JoinResultEntry> DecodeJoinEntries(
    const std::vector<uint8_t>& image, size_t* dropped) {
  TupleBatch batch = TupleBatch::DeserializeLossy(image, dropped);
  std::vector<JoinResultEntry> entries;
  entries.reserve(batch.size());
  for (Tuple& t : batch.TakeTuples()) {
    if (t.arity() == 0) {
      ++*dropped;
      continue;
    }
    JoinResultEntry e;
    e.join_key = t.at(0);
    e.payload = t.SubTuple(1);
    entries.push_back(std::move(e));
  }
  return entries;
}

PierNode::PierNode(dht::DhtNode* dht, PierMetrics* metrics)
    : dht_(dht), metrics_(metrics) {
  assert(dht != nullptr && metrics != nullptr);
  dht_->SetUpcallHandler(kAppJoinStage,
                         [this](const dht::RouteMsg& m) { OnJoinStage(m); });
  dht_->SetUpcallHandler(kAppSizeProbe,
                         [this](const dht::RouteMsg& m) { OnSizeProbe(m); });
  dht_->SetDirectHandler([this](sim::HostId from, const sim::Message& m) {
    OnDirect(from, m);
  });
  // Fence standing transport state on every DHT ownership change. The DHT
  // node outlives us and cannot unregister listeners, so the callback
  // holds a liveness token instead of a bare `this`.
  alive_ = std::make_shared<bool>(true);
  dht_->AddEpochListener([this, alive = std::weak_ptr<bool>(alive_)]() {
    if (alive.lock()) OnMembershipEpoch();
  });
}

void PierNode::OnMembershipEpoch() {
  if (fencing_) return;  // a fence's own sends can bump the epoch again
  fencing_ = true;
  ++metrics_->epoch_fences;
  // Standing rehash queues: the pressure probe taken at each queue's fill
  // start may aim at a host that no longer owns the destination key.
  // Re-probe under the new ring; a threshold now at-or-below the queued
  // count ships immediately (the flush itself re-resolves the owner by
  // routing on the key, and the fenced route cache forces the ring path).
  for (auto it = rehash_queues_.begin(); it != rehash_queues_.end();) {
    RehashQueue& q = it->second;
    q.flush_threshold = FlushThresholdTuples(it->first.second);
    if (q.count >= q.flush_threshold) {
      it = FlushAndErase(it);
    } else {
      ++it;
    }
  }
  // Stalled credit streams: the owner whose acks would resume the stream
  // may be the casualty this epoch announces. Kick each stalled stream
  // with one credit so its next unsent chunk re-routes under the new
  // ring; the answering (possibly new) owner's ack restores normal
  // pacing. A stream whose owner actually survived just runs one chunk
  // ahead of its granted credit — bounded, and self-correcting.
  std::vector<uint64_t> stalled;
  for (const auto& [id, stream] : chunk_streams_) {
    if (stream.stall_timer != sim::kInvalidEventId) stalled.push_back(id);
  }
  for (uint64_t id : stalled) {
    auto it = chunk_streams_.find(id);
    if (it == chunk_streams_.end()) continue;  // completed by an earlier kick
    ++metrics_->epoch_stream_kicks;
    it->second.credits += 1;
    PumpStream(it);
  }
  // Pending staged queries: the epoch may announce the death of the very
  // stage owner a query is waiting on. Probe each one's progress now
  // instead of sitting out the rest of its watchdog slice — with a grace
  // window so a burst of bumps right after dispatch cannot burn the
  // failover budget before the first chunks could possibly have arrived.
  std::vector<uint64_t> waiting;
  waiting.reserve(pending_joins_.size());
  for (const auto& [qid, p] : pending_joins_) waiting.push_back(qid);
  sim::SimTime now = dht_->network()->executor()->now();
  for (uint64_t qid : waiting) {
    auto jt = pending_joins_.find(qid);
    if (jt == pending_joins_.end()) continue;  // resolved by an earlier probe
    const PendingJoin& p = jt->second;
    if (p.watchdog == sim::kInvalidEventId) continue;  // off or budget spent
    if (now - p.dispatched_at < p.watchdog_interval) continue;
    CheckJoinProgress(qid);
  }
  fencing_ = false;
}

PierNode::~PierNode() {
  // Ship everything still queued (resolving pending acks through the DHT
  // node, which outlives us) and cancel the flush timers that capture
  // `this` so none fires into a destroyed node.
  FlushPublishQueues();
  // Stall timers capture `this` too; drop the streams they watch.
  for (auto& [id, stream] : chunk_streams_) {
    if (stream.stall_timer != sim::kInvalidEventId) {
      dht_->network()->executor()->Cancel(stream.stall_timer);
    }
  }
}

void PierNode::Publish(const Schema& schema, Tuple tuple, sim::SimTime expiry,
                       dht::DhtNode::PutCallback callback) {
  ++metrics_->tuples_published;
  ++metrics_->publish_messages;
  std::vector<uint8_t> bytes = tuple.Serialize();
  metrics_->publish_bytes += bytes.size();
  dht::Key key = DhtKeyFor(schema.table_name(), tuple.IndexValue(schema));
  // Preserve this node's publish ordering across the two paths: a standing
  // queue still holding tuples for this destination must ship before the
  // direct Put, or a queued older expiry could later roll back the refresh
  // this Put applies.
  auto it = rehash_queues_.find(std::make_pair(schema.table_name(), key));
  if (it != rehash_queues_.end()) FlushAndErase(it);
  dht_->Put(schema.table_name(), key, std::move(bytes), expiry,
            std::move(callback));
}

void PierNode::FlushQueue(const std::pair<std::string, dht::Key>& dest,
                          RehashQueue* q) {
  if (q->flush_timer != sim::kInvalidEventId) {
    dht_->network()->executor()->Cancel(q->flush_timer);
    q->flush_timer = sim::kInvalidEventId;
  }
  if (q->count == 0) return;
  if (!dht_->joined()) {
    // The node crashed or left between enqueue and flush: the batch cannot
    // ship, and without a put timeout the acks would hang forever — fail
    // them now instead.
    for (const auto& ack : q->subscribers) {
      ack->Resolve(Status::Unavailable("node departed before flush"));
    }
  } else {
    ++metrics_->publish_messages;
    dht::DhtNode::PutCallback sub;
    if (!q->subscribers.empty()) {
      sub = [subs = std::move(q->subscribers)](Status s) {
        for (const auto& ack : subs) ack->Resolve(s);
      };
    }
    dht_->PutBatch(dest.first, dest.second, q->frames.Take(), q->count,
                   q->expiry, std::move(sub));
  }
  q->frames = BytesWriter();
  q->count = 0;
  q->subscribers.clear();
}

PierNode::QueueMap::iterator PierNode::FlushAndErase(QueueMap::iterator it) {
  FlushQueue(it->first, &it->second);
  return rehash_queues_.erase(it);
}

size_t PierNode::FlushThresholdTuples(dht::Key key) const {
  if (!batch_options_.adaptive_flush) return batch_options_.max_batch_tuples;
  // Probe the pressure toward the queue's destination (the next routing
  // hop — the cached owner itself once the location cache is warm — is
  // the congestion a flushed PutBatch meets first). An idle path
  // means a flush costs nothing to pipeline — ship small batches for
  // latency. Every in-flight message doubles the patience, growing batches
  // toward the fixed ceiling while earlier sends drain.
  sim::DestinationLoad load = dht_->NextHopLoad(key);
  uint32_t level = std::min<uint32_t>(load.in_flight_messages, 16);
  // Floor at 1 so a zero min (misconfiguration) degrades to per-tuple
  // batching instead of flushing on every enqueue below the ceiling.
  size_t floor = std::max<size_t>(batch_options_.min_batch_tuples, 1);
  return std::min(floor << level, batch_options_.max_batch_tuples);
}

void PierNode::EnqueueRehash(const std::string& ns, dht::Key key,
                             const Tuple& tuple, size_t wire_size,
                             sim::SimTime expiry,
                             const std::shared_ptr<PublishAck>& ack) {
  auto it = rehash_queues_.try_emplace(std::make_pair(ns, key)).first;
  RehashQueue& q = it->second;
  // PutBatch carries one expiry for the whole message; a differing expiry
  // starts a fresh batch.
  if (q.count > 0 && q.expiry != expiry) FlushQueue(it->first, &q);
  q.expiry = expiry;
  if (ack) {
    bool registered = false;
    for (const auto& s : q.subscribers) {
      if (s == ack) {
        registered = true;
        break;
      }
    }
    if (!registered) {
      q.subscribers.push_back(ack);
      ++ack->remaining;
    }
  }
  if (q.count == 0) q.flush_threshold = FlushThresholdTuples(key);
  q.frames.PutVarint(wire_size);
  tuple.SerializeTo(&q.frames);
  ++q.count;
  if (q.count >= q.flush_threshold ||
      q.frames.size() >= batch_options_.max_batch_bytes) {
    if (q.count < batch_options_.max_batch_tuples &&
        q.frames.size() < batch_options_.max_batch_bytes) {
      ++metrics_->adaptive_flushes;  // the load probe fired, not a ceiling
    }
    FlushAndErase(it);
    return;
  }
  if (q.flush_timer == sim::kInvalidEventId) {
    q.flush_timer = dht_->network()->executor()->ScheduleAfter(dht_->host(), 
        batch_options_.flush_interval,
        [this, dest = it->first]() {
          auto qit = rehash_queues_.find(dest);
          if (qit == rehash_queues_.end()) return;
          qit->second.flush_timer = sim::kInvalidEventId;
          FlushAndErase(qit);
        });
  }
}

void PierNode::PublishBatch(const Schema& schema, std::vector<Tuple> tuples,
                            sim::SimTime expiry,
                            dht::DhtNode::PutCallback callback) {
  if (tuples.empty()) {
    if (callback) callback(Status::OK());
    return;
  }
  std::shared_ptr<PublishAck> ack;
  if (callback) {
    ack = std::make_shared<PublishAck>();
    ack->callback = std::move(callback);
  }
  for (const Tuple& t : tuples) {
    ++metrics_->tuples_published;
    size_t wire = t.WireSize();
    metrics_->publish_bytes += wire;
    EnqueueRehash(schema.table_name(),
                  DhtKeyFor(schema.table_name(), t.IndexValue(schema)), t,
                  wire, expiry, ack);
  }
  if (ack) {
    ack->armed = true;
    ack->MaybeFire();  // all obligations may have failed synchronously
  }
}

void PierNode::FlushPublishQueues() {
  for (auto it = rehash_queues_.begin(); it != rehash_queues_.end();) {
    it = FlushAndErase(it);
  }
}

std::vector<Tuple> PierNode::DecodeLocalBatch(const std::string& ns,
                                              dht::Key key) {
  sim::SimTime now = dht_->network()->executor()->now();
  dht::BatchImage image = dht_->store().GetBatch(ns, key, now);
  size_t dropped = 0;
  TupleBatch batch = TupleBatch::DeserializeLossy(*image, &dropped);
  metrics_->tuples_dropped_deserialize += dropped;
  return batch.TakeTuples();
}

std::vector<Tuple> PierNode::ScanLocal(const Schema& schema,
                                       const Value& key) {
  std::vector<Tuple> out;
  dht::Key k = DhtKeyFor(schema.table_name(), key);
  for (Tuple& t : DecodeLocalBatch(schema.table_name(), k)) {
    if (t.arity() <= schema.index_field()) continue;
    if (!(t.IndexValue(schema) == key)) continue;  // 64-bit collision
    out.push_back(std::move(t));
  }
  return out;
}

void PierNode::Fetch(const Schema& schema, const Value& key,
                     FetchCallback callback) {
  ++metrics_->fetches;
  dht::Key k = DhtKeyFor(schema.table_name(), key);
  size_t index_field = schema.index_field();
  // Captures the metrics sink rather than `this`: the deployment-owned
  // PierMetrics outlives any one node, so a reply landing after this
  // PierNode is gone stays safe.
  dht_->GetBatch(
      schema.table_name(), k,
      [metrics = metrics_, callback = std::move(callback), key, index_field](
          Status s, dht::BatchImage image) {
        if (!s.ok()) {
          // Labeled non-answer: the key's owner never reported.
          Completeness c;
          c.exact = false;
          c.coverage_fraction = 0.0;
          ++metrics->partial_results;
          callback(s, {}, c);
          return;
        }
        size_t dropped = 0;
        TupleBatch batch = TupleBatch::DeserializeLossy(*image, &dropped);
        metrics->tuples_dropped_deserialize += dropped;
        std::vector<Tuple> tuples;
        tuples.reserve(batch.size());
        for (Tuple& t : batch.TakeTuples()) {
          if (t.arity() <= index_field) continue;
          if (!(t.at(index_field) == key)) continue;
          tuples.push_back(std::move(t));
        }
        callback(Status::OK(), std::move(tuples), Completeness{});
      });
}

void PierNode::FetchMany(const Schema& schema, std::vector<Value> keys,
                         FetchCallback callback) {
  FetchManyInternal(schema.table_name(), schema.index_field(),
                    std::move(keys), std::move(callback), /*top_level=*/true);
}

void PierNode::FetchManyByField(const std::string& ns, size_t index_field,
                                std::vector<Value> keys,
                                FetchCallback callback) {
  FetchManyInternal(ns, index_field, std::move(keys), std::move(callback),
                    /*top_level=*/true);
}

namespace {

/// Shared race state between a FetchMany primary scatter and its optional
/// hedge: the first COMPLETE answer wins and the loser is suppressed;
/// incomplete answers are stashed until every issued leg reported, then the
/// best one ships as a labeled partial.
struct HedgedFetch {
  bool done = false;
  bool hedge_sent = false;
  size_t outstanding = 0;
  sim::EventId hedge_timer = sim::kInvalidEventId;
  bool have_best = false;
  Status best_status;
  std::vector<dht::DhtNode::MultiGetItem> best_items;
};

}  // namespace

void PierNode::FetchManyInternal(const std::string& ns, size_t index_field,
                                 std::vector<Value> keys,
                                 FetchCallback callback, bool top_level) {
  if (keys.empty()) {
    callback(Status::OK(), {}, Completeness{});
    return;
  }
  ++metrics_->multi_fetches;
  // Distinct values may collide onto one ring key (64-bit hash); keep every
  // requested value per key so the collision filter admits all of them.
  auto wanted = std::make_shared<
      std::unordered_map<dht::Key, std::vector<Value>>>();
  std::vector<dht::Key> dht_keys;
  dht_keys.reserve(keys.size());
  for (Value& v : keys) {
    dht::Key k = DhtKeyFor(ns, v);
    auto [it, fresh] = wanted->try_emplace(k);
    if (fresh) dht_keys.push_back(k);
    it->second.push_back(std::move(v));
  }
  size_t requested = dht_keys.size();
  sim::Executor* exec = dht_->network()->executor();
  auto race = std::make_shared<HedgedFetch>();

  // The resolution path captures the metrics sink and executor rather than
  // `this` (the deployment-owned objects outlive any one node), matching
  // the single-key Fetch precedent.
  auto finish = [metrics = metrics_, exec, race, wanted, index_field,
                 requested, top_level, callback = std::move(callback)](
                    Status s,
                    std::vector<dht::DhtNode::MultiGetItem> items,
                    bool from_hedge) {
    if (race->done) return;
    --race->outstanding;
    bool complete = s.ok();
    if (!complete && race->outstanding > 0) {
      // Keep the better incomplete answer; the other leg may still win.
      if (!race->have_best || items.size() > race->best_items.size()) {
        race->have_best = true;
        race->best_status = s;
        race->best_items = std::move(items);
      }
      return;
    }
    if (!complete && race->have_best &&
        race->best_items.size() > items.size()) {
      s = race->best_status;
      items = std::move(race->best_items);
    }
    race->done = true;
    if (race->hedge_timer != sim::kInvalidEventId) {
      exec->Cancel(race->hedge_timer);
      race->hedge_timer = sim::kInvalidEventId;
    }
    Completeness c;
    if (from_hedge && complete) {
      ++metrics->hedges_won;
      c.hedges_won = 1;
    }
    // The MultiGet contract delivers one item per answered key (timeouts
    // deliver whatever was gathered), so the item count IS the coverage.
    c.exact = s.ok();
    c.coverage_fraction = std::min(
        1.0, static_cast<double>(items.size()) /
                 static_cast<double>(requested));
    if (!c.exact && top_level) ++metrics->partial_results;
    std::vector<Tuple> tuples;
    for (const auto& item : items) {
      if (!item.batch) continue;
      size_t dropped = 0;
      TupleBatch batch = TupleBatch::DeserializeLossy(*item.batch, &dropped);
      metrics->tuples_dropped_deserialize += dropped;
      auto want = wanted->find(item.key);
      if (want == wanted->end()) continue;
      for (Tuple& t : batch.TakeTuples()) {
        if (t.arity() <= index_field) continue;
        const Value& got = t.at(index_field);
        bool requested_value = false;
        for (const Value& v : want->second) {
          if (got == v) {
            requested_value = true;
            break;
          }
        }
        if (requested_value) tuples.push_back(std::move(t));
      }
    }
    callback(std::move(s), std::move(tuples), c);
  };

  // Hedge policy: probe the smoothed next-hop latency toward each owner
  // (bounded probe count) and, when the worst path looks slow, arm a
  // backup replica-preferring scatter after a quantile-style delay — it
  // fires only if the primary is still unanswered by then, and the
  // duplicate answer is suppressed by the shared race above.
  if (batch_options_.hedged_fetches) {
    sim::SimTime worst = 0;
    size_t probes = std::min<size_t>(dht_keys.size(), 16);
    for (size_t i = 0; i < probes; ++i) {
      worst =
          std::max(worst, dht_->NextHopLoad(dht_keys[i]).smoothed_latency);
    }
    if (worst > batch_options_.hedge_latency_threshold) {
      sim::SimTime delay =
          std::min(std::max(batch_options_.hedge_min_delay,
                            batch_options_.hedge_delay_factor * worst),
                   batch_options_.hedge_max_delay);
      race->hedge_timer = exec->ScheduleAfter(
          dht_->host(), delay,
          [this, race, finish, ns, hedge_keys = dht_keys]() {
            race->hedge_timer = sim::kInvalidEventId;
            if (race->done) return;
            race->hedge_sent = true;
            ++race->outstanding;
            ++metrics_->hedges_sent;
            dht::DhtNode::MultiGetOptions opts;
            opts.prefer_replica = true;
            dht_->MultiGet(
                ns, hedge_keys,
                [finish](Status s,
                         std::vector<dht::DhtNode::MultiGetItem> items) {
                  finish(std::move(s), std::move(items),
                         /*from_hedge=*/true);
                },
                opts);
          });
    }
  }

  race->outstanding = 1;
  dht_->MultiGet(
      ns, std::move(dht_keys),
      [finish](Status s, std::vector<dht::DhtNode::MultiGetItem> items) {
        finish(std::move(s), std::move(items), /*from_hedge=*/false);
      });
}

void PierNode::ProbePostingSize(const std::string& ns, const Value& key,
                                ProbeCallback callback) {
  ++metrics_->probe_messages;
  uint64_t qid = NextQid();
  PendingProbe pending;
  pending.callback = std::move(callback);
  pending.timeout = dht_->network()->executor()->ScheduleAfter(dht_->host(), 
      10 * sim::kSecond, [this, qid]() {
        auto it = pending_probes_.find(qid);
        if (it == pending_probes_.end()) return;
        ProbeCallback cb = std::move(it->second.callback);
        pending_probes_.erase(it);
        cb(Status::TimedOut("posting size probe"), 0);
      });
  pending_probes_[qid] = std::move(pending);
  auto body = std::make_shared<const SizeProbeMsg>(SizeProbeMsg{qid, ns, key});
  dht_->Route(DhtKeyFor(ns, key), kAppSizeProbe, body,
              ns.size() + key.WireSize() + 8, qid);
}

void PierNode::ExecuteJoin(DistributedJoin join, JoinCallback callback,
                           sim::SimTime timeout) {
  assert(!join.stages.empty());
  // Thin adapter: lower the legacy join description into the plan engine's
  // staged form — substring filters become serializable Expr trees with
  // identical match semantics (Contains is the FilenameMatchesQuery rule).
  auto staged = std::make_shared<StagedQuery>();
  staged->limit = join.limit;
  staged->cap_results = true;
  staged->stages.reserve(join.stages.size());
  for (JoinStage& s : join.stages) {
    ExecStage e;
    e.ns = std::move(s.ns);
    e.key = std::move(s.key);
    e.key_col = s.key_col;
    e.join_col = s.join_col;
    e.payload_cols = std::move(s.payload_cols);
    if (!s.substring_filter.empty()) {
      std::vector<Expr> terms;
      terms.reserve(s.substring_filter.size());
      for (std::string& f : s.substring_filter) {
        terms.push_back(
            Expr::Contains(Expr::Column(s.filter_col), std::move(f)));
      }
      e.filter = Expr::And(std::move(terms));
    }
    staged->stages.push_back(std::move(e));
  }
  ExecuteStaged(std::move(staged), std::move(callback), timeout);
}

void PierNode::ExecuteStaged(std::shared_ptr<const StagedQuery> query,
                             JoinCallback callback, sim::SimTime timeout,
                             bool top_level) {
  assert(!query->stages.empty());
  ++metrics_->joins_executed;
  uint64_t qid = NextQid();
  sim::Executor* exec = dht_->network()->executor();
  PendingJoin pending;
  pending.callback = std::move(callback);
  pending.limit = query->cap_results ? query->limit : SIZE_MAX;
  pending.query = std::move(query);
  pending.top_level = top_level;
  pending.deadline = exec->now() + timeout;
  pending.failovers_left = batch_options_.stage_failover_budget;
  pending.defers_left = batch_options_.admission_defer_budget;
  // Progress checks slice the deadline geometrically (the AttemptTimeout
  // pattern): with budget B the first check fires after timeout/(2^(B+1)-1)
  // and each re-dispatch doubles the next wait, so every failover still
  // fits inside the original deadline.
  if (pending.failovers_left > 0) {
    sim::SimTime slices =
        (sim::SimTime{1} << (pending.failovers_left + 1)) - 1;
    pending.watchdog_interval = timeout / slices;
  }
  pending.timeout = exec->ScheduleAfter(dht_->host(), timeout, [this, qid]() {
    auto it = pending_joins_.find(qid);
    if (it == pending_joins_.end()) return;
    it->second.timeout = sim::kInvalidEventId;
    // Hand over the chunk replies that did arrive — with chunked
    // streaming a timeout usually means one lost chunk, not nothing.
    // (OnDirect caps the accumulator at the limit.)
    ResolveJoin(qid, Status::TimedOut("distributed join"));
  });
  pending_joins_[qid] = std::move(pending);
  DispatchStage0(qid);
}

void PierNode::DispatchStage0(uint64_t qid) {
  auto it = pending_joins_.find(qid);
  if (it == pending_joins_.end()) return;
  PendingJoin& pending = it->second;
  pending.dispatched_at = dht_->network()->executor()->now();
  pending.watchdog_weight = pending.weight_received;

  JoinStageMsg msg;
  msg.qid = qid;
  msg.query = pending.query;
  msg.stage_idx = 0;
  msg.entries_image = EncodeJoinEntries({});
  msg.weight = kFullJoinWeight;
  msg.origin = dht_->info();
  msg.generation = pending.generation;
  const ExecStage& first = msg.query->stages[0];
  dht::Key target = DhtKeyFor(first.ns, first.key);
  ++metrics_->join_stage_messages;
  size_t bytes = StageMsgWireSize(msg);
  dht_->Route(target, kAppJoinStage,
              std::make_shared<const JoinStageMsg>(std::move(msg)), bytes,
              qid);
  ArmJoinWatchdog(qid);
}

void PierNode::ArmJoinWatchdog(uint64_t qid) {
  auto it = pending_joins_.find(qid);
  if (it == pending_joins_.end()) return;
  PendingJoin& pending = it->second;
  sim::Executor* exec = dht_->network()->executor();
  if (pending.watchdog != sim::kInvalidEventId) {
    exec->Cancel(pending.watchdog);
    pending.watchdog = sim::kInvalidEventId;
  }
  if (pending.watchdog_interval == 0) return;
  // A check landing at or past the deadline is pointless: the deadline
  // timer already delivers the labeled partial.
  if (exec->now() + pending.watchdog_interval >= pending.deadline) return;
  pending.watchdog =
      exec->ScheduleAfter(dht_->host(), pending.watchdog_interval,
                          [this, qid]() {
                            auto pit = pending_joins_.find(qid);
                            if (pit == pending_joins_.end()) return;
                            pit->second.watchdog = sim::kInvalidEventId;
                            CheckJoinProgress(qid);
                          });
}

void PierNode::CheckJoinProgress(uint64_t qid) {
  auto it = pending_joins_.find(qid);
  if (it == pending_joins_.end()) return;
  PendingJoin& pending = it->second;
  if (pending.weight_received > pending.watchdog_weight) {
    // Reply weight advanced since the last check: chunks are flowing.
    pending.watchdog_weight = pending.weight_received;
    ArmJoinWatchdog(qid);
    return;
  }
  if (pending.failovers_left == 0) return;  // deadline delivers the partial
  // Stalled: the dispatched chain lost its weight somewhere — a crashed
  // stage owner, a dropped chunk, an expired credit stream. Re-dispatch
  // stage 0 under a new generation: routing re-resolves against the
  // current ring, landing on the replica-holding successor when the owner
  // died. The accumulated entries are discarded along with the old
  // generation's weight so the retry cannot duplicate them; stale replies
  // from the superseded dispatch are fenced by the generation stamp.
  --pending.failovers_left;
  ++pending.generation;
  ++metrics_->stage_failovers;
  pending.completeness.failovers += 1;
  pending.entries.clear();
  pending.weight_received = 0;
  pending.watchdog_weight = 0;
  pending.watchdog_interval *= 2;
  DispatchStage0(qid);
}

void PierNode::ResolveJoin(uint64_t qid, Status s) {
  auto it = pending_joins_.find(qid);
  if (it == pending_joins_.end()) return;
  PendingJoin& pending = it->second;
  sim::Executor* exec = dht_->network()->executor();
  if (pending.timeout != sim::kInvalidEventId) exec->Cancel(pending.timeout);
  if (pending.watchdog != sim::kInvalidEventId) {
    exec->Cancel(pending.watchdog);
  }
  Completeness c = pending.completeness;
  if (pending.weight_received < kFullJoinWeight) {
    c.exact = false;
    c.coverage_fraction *= static_cast<double>(pending.weight_received) /
                           static_cast<double>(kFullJoinWeight);
    // A shed query never started a stage; anything else short of full
    // weight means at least one stage's answers never came back.
    if (!c.shed) c.stages_failed += 1;
  }
  if (!c.exact && pending.top_level) ++metrics_->partial_results;
  JoinCallback cb = std::move(pending.callback);
  std::vector<JoinResultEntry> results = std::move(pending.entries);
  pending_joins_.erase(it);
  cb(std::move(s), std::move(results), c);
}

bool PierNode::AdmitStage0(const JoinStageMsg& m) {
  if (!batch_options_.admission_control) return true;
  sim::DestinationLoad load = dht_->network()->LoadOf(dht_->host());
  if (load.in_flight_messages <= batch_options_.admission_inflight_floor) {
    return true;  // an idle node admits everything, whatever the list size
  }
  const ExecStage& stage = m.query->stages[0];
  size_t posting =
      dht_->store()
          .Get(stage.ns, DhtKeyFor(stage.ns, stage.key),
               dht_->network()->executor()->now())
          .size();
  uint32_t level = std::min<uint32_t>(
      static_cast<uint32_t>(load.in_flight_messages -
                            batch_options_.admission_inflight_floor),
      16);
  size_t budget = std::max(batch_options_.admission_min_entries,
                           batch_options_.admission_base_entries >> level);
  if (posting <= budget) return true;
  // Refuse: the plan would scan and ship more entries than this node's
  // pressure budget allows. The hint scales with the pressure level so a
  // hotter node pushes retries further out.
  ++metrics_->plans_shed;
  DirectEnvelope env;
  env.subtype = kPlanRefused;
  env.qid = m.qid;
  env.generation = m.generation;
  env.retry_after = batch_options_.admission_retry_after * (1 + level);
  dht_->SendDirect(m.origin.host,
                   sim::Message::Make<DirectEnvelope>(
                       dht::DhtNode::kDirectApp, "pier.refuse", 29,
                       std::move(env)));
  return false;
}

void PierNode::OnPlanRefused(const DirectEnvelope& env) {
  auto it = pending_joins_.find(env.qid);
  if (it == pending_joins_.end()) return;
  PendingJoin& pending = it->second;
  if (env.generation != pending.generation) return;  // superseded dispatch
  sim::Executor* exec = dht_->network()->executor();
  sim::SimTime retry = std::max<sim::SimTime>(env.retry_after, 1);
  if (pending.defers_left > 0 && exec->now() + retry < pending.deadline) {
    --pending.defers_left;
    ++metrics_->plans_deferred;
    pending.completeness.deferrals += 1;
    if (pending.watchdog != sim::kInvalidEventId) {
      exec->Cancel(pending.watchdog);
      pending.watchdog = sim::kInvalidEventId;
    }
    // The refused dispatch is dead at the owner, so the generation can
    // stay: at most one dispatch is ever live per generation.
    exec->ScheduleAfter(dht_->host(), retry,
                        [this, qid = env.qid, gen = pending.generation]() {
                          auto pit = pending_joins_.find(qid);
                          if (pit == pending_joins_.end()) return;
                          if (pit->second.generation != gen) return;
                          DispatchStage0(qid);
                        });
    return;
  }
  // No defer budget (or no time left to wait): an explicit labeled shed.
  pending.completeness.shed = true;
  pending.completeness.retry_after = retry;
  pending.entries.clear();
  ResolveJoin(env.qid, Status::Unavailable("plan shed by admission control"));
}

size_t PierNode::StageMsgWireSize(const JoinStageMsg& m) {
  size_t bytes = 40;  // qid, stage idx, weight, origin, limit
  if (m.stream_id != 0) bytes += 20;  // credit stream handle + producer
  for (const ExecStage& s : m.query->stages) bytes += s.WireSize();
  // The entry list is a real TupleBatch image: its charged size is exact.
  bytes += m.entries_image.size();
  return bytes;
}

std::vector<JoinResultEntry> PierNode::LocalStageEntries(
    const ExecStage& stage) {
  std::vector<JoinResultEntry> out;
  dht::Key k = DhtKeyFor(stage.ns, stage.key);
  for (Tuple& t : DecodeLocalBatch(stage.ns, k)) {
    if (t.arity() <= stage.key_col || t.arity() <= stage.join_col) continue;
    if (!(t.at(stage.key_col) == stage.key)) continue;
    if (!stage.filter.is_true() && !stage.filter.Matches(t)) continue;
    JoinResultEntry e;
    e.join_key = t.at(stage.join_col);
    if (!stage.payload_cols.empty()) {
      std::vector<Value> payload;
      payload.reserve(stage.payload_cols.size());
      for (size_t c : stage.payload_cols) {
        payload.push_back(c < t.arity() ? t.at(c) : Value());
      }
      e.payload = Tuple(std::move(payload));
    }
    out.push_back(std::move(e));
  }
  return out;
}

void PierNode::SendJoinReply(const dht::NodeInfo& origin, uint64_t qid,
                             const std::vector<JoinResultEntry>& entries,
                             uint64_t weight, uint32_t generation) {
  // Stream the answer directly to the query node (bypasses the overlay).
  DirectEnvelope env;
  env.subtype = kJoinReply;
  env.qid = qid;
  env.entries_image = EncodeJoinEntries(entries);
  env.weight = weight;
  env.generation = generation;
  size_t bytes = 24 + env.entries_image.size();
  dht_->SendDirect(origin.host,
                   sim::Message::Make<DirectEnvelope>(
                       dht::DhtNode::kDirectApp, "pier.answer", bytes,
                       std::move(env)));
}

void PierNode::ForwardToStage(const JoinStageMsg& prev,
                              std::vector<JoinResultEntry> surviving) {
  const StagedQuery& query = *prev.query;
  size_t next_idx = prev.stage_idx + 1;
  const ExecStage& next_stage = query.stages[next_idx];
  dht::Key target = DhtKeyFor(next_stage.ns, next_stage.key);

  // Past the flush threshold, the entry list streams onward in chunks so a
  // huge intermediate posting list does not ship as one message. The
  // termination weight divides across chunks (and is never created or
  // destroyed), so the query node completes exactly when every chunk's
  // reply arrived — robust to reply reordering. Unsent chunks park their
  // weight share here until credit releases them.
  size_t per_chunk = std::max<size_t>(1, batch_options_.max_stage_entries);
  size_t chunks = (surviving.size() + per_chunk - 1) / per_chunk;
  if (chunks > prev.weight) {
    // Weight exhausted (pathologically deep split chain): stop splitting
    // and ship the WHOLE list as one chunk — never truncate it.
    chunks = 1;
    per_chunk = surviving.size();
  }
  uint64_t base = prev.weight / chunks;
  uint64_t extra = prev.weight % chunks;

  ChunkStream stream;
  stream.qid = prev.qid;
  stream.query = prev.query;
  stream.stage_idx = next_idx;
  stream.origin = prev.origin;
  stream.target = target;
  stream.generation = prev.generation;
  stream.chunks.reserve(chunks);
  stream.weights.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(surviving.size(), begin + per_chunk);
    stream.chunks.emplace_back(
        std::make_move_iterator(surviving.begin() + begin),
        std::make_move_iterator(surviving.begin() + end));
    stream.weights.push_back(base + (c == 0 ? extra : 0));
  }

  size_t window = CreditWindowChunks(target);
  if (window == 0 || chunks <= window) {
    // Fits in one credit window (or pacing is off): ship everything now,
    // no stream registered, no ack chatter.
    for (size_t c = 0; c < chunks; ++c) SendChunk(&stream, c, /*stream_id=*/0);
    return;
  }
  stream.credits = window;
  uint64_t stream_id = next_stream_id_++;
  auto [it, inserted] = chunk_streams_.emplace(stream_id, std::move(stream));
  (void)inserted;
  PumpStream(it);
}

size_t PierNode::CreditWindowChunks(dht::Key target) {
  size_t base = batch_options_.stage_credit_chunks;
  if (base == 0 || !batch_options_.adaptive_credit) return base;
  // Observed service rate of the path toward the consuming stage owner
  // (the next routing hop, same probe the adaptive flush drives on). No
  // measurement yet means no trust: stay at the constant floor. Every
  // halving of observed latency below the reference earns a doubling of
  // the pipeline, up to the fixed ceiling — fast consumers drain deep
  // windows without ever being buried, slow ones keep the tight window
  // that bounds their in-flight backlog.
  sim::DestinationLoad load = dht_->NextHopLoad(target);
  if (load.smoothed_latency == 0) return base;
  size_t window = base;
  sim::SimTime lat = load.smoothed_latency;
  while (lat * 2 <= batch_options_.credit_latency_ref &&
         window < batch_options_.max_stage_credit_chunks) {
    lat *= 2;
    window = std::min(window * 2, batch_options_.max_stage_credit_chunks);
  }
  if (window > base) ++metrics_->credit_window_boosts;
  return window;
}

void PierNode::SendChunk(ChunkStream* stream, size_t idx,
                         uint64_t stream_id) {
  JoinStageMsg next;
  next.qid = stream->qid;
  next.query = stream->query;
  next.stage_idx = stream->stage_idx;
  next.entries_image = EncodeJoinEntries(stream->chunks[idx]);
  next.weight = stream->weights[idx];
  next.origin = stream->origin;
  next.generation = stream->generation;
  if (stream_id != 0) {
    // Paced chunks carry the stream handle so the stage owner's ack can
    // find its way back and release the next send.
    next.stream_id = stream_id;
    next.producer = dht_->info();
  }
  metrics_->posting_entries_shipped += stream->chunks[idx].size();
  ++metrics_->join_stage_messages;
  stream->chunks[idx].clear();
  size_t bytes = StageMsgWireSize(next);
  dht_->Route(stream->target, kAppJoinStage,
              std::make_shared<const JoinStageMsg>(std::move(next)), bytes,
              stream->qid);
}

void PierNode::PumpStream(std::map<uint64_t, ChunkStream>::iterator it) {
  uint64_t stream_id = it->first;
  ChunkStream& stream = it->second;
  while (stream.next < stream.chunks.size() && stream.credits > 0) {
    --stream.credits;
    SendChunk(&stream, stream.next++, stream_id);
  }
  if (stream.stall_timer != sim::kInvalidEventId) {
    dht_->network()->executor()->Cancel(stream.stall_timer);
    stream.stall_timer = sim::kInvalidEventId;
  }
  if (stream.next >= stream.chunks.size()) {
    chunk_streams_.erase(it);
    return;
  }
  // Out of credit with chunks pending: the downstream owner is backed up.
  // Pause here — its acks resume the stream — and bound the wait so a dead
  // owner cannot leak the stream forever.
  ++metrics_->credits_stalled;
  stream.stall_timer = dht_->network()->executor()->ScheduleAfter(dht_->host(), 
      batch_options_.credit_stall_timeout, [this, stream_id]() {
        auto sit = chunk_streams_.find(stream_id);
        if (sit == chunk_streams_.end()) return;
        // The unsent chunks' weight never reaches the query node; its
        // timeout delivers the partial results that did arrive.
        ++metrics_->credit_streams_expired;
        chunk_streams_.erase(sit);
      });
}

void PierNode::OnJoinStage(const dht::RouteMsg& msg) {
  const auto& stage_msg = msg.body<JoinStageMsg>();
  const StagedQuery& query = *stage_msg.query;
  const ExecStage& stage = query.stages[stage_msg.stage_idx];

  // Overload shedding happens at the chain's entry point only: once a plan
  // is admitted its downstream stages carry already-spent work, and
  // dropping it there would waste more than it saves.
  if (stage_msg.stage_idx == 0 && !AdmitStage0(stage_msg)) return;

  std::vector<JoinResultEntry> local = LocalStageEntries(stage);

  std::vector<JoinResultEntry> surviving;
  if (stage_msg.stage_idx == 0) {
    surviving = std::move(local);
  } else {
    size_t dropped = 0;
    std::vector<JoinResultEntry> incoming =
        DecodeJoinEntries(stage_msg.entries_image, &dropped);
    metrics_->tuples_dropped_deserialize += dropped;
    // Symmetric hash join between the shipped entries (left) and the local
    // posting list (right); the surviving payload is the incoming one.
    SymmetricHashJoin shj(/*left_col=*/0, /*right_col=*/0);
    shj.Reserve(incoming.size(), local.size());
    for (const auto& e : local) {
      shj.InsertRight(Tuple(std::vector<Value>{e.join_key}));
    }
    for (auto& e : incoming) {
      auto joined = shj.InsertLeft(Tuple(std::vector<Value>{e.join_key}));
      // Duplicate local postings for the same key yield duplicate joins;
      // the chain semantics are set-based, so take at most one.
      if (!joined.empty()) surviving.push_back(std::move(e));
    }
  }

  // Credit-paced chunk: ack it so the producer releases the next one. The
  // grant leaves AFTER this stage's own processing (including forwarding
  // the survivors), so a backed-up stage's service time paces its
  // upstream.
  bool last = stage_msg.stage_idx + 1 == query.stages.size();
  // The cap applies to the final answer only; truncating an intermediate
  // posting list could drop entries that survive later stages, and a plan
  // whose finishers need the full surviving set (cap_results off — e.g. a
  // TopK over a fetched column) must not truncate at all. (Chunked
  // last-stage arrivals are capped per chunk here and again at the query
  // node once the stream completes.)
  if (last && query.cap_results && surviving.size() > query.limit) {
    surviving.resize(query.limit);
  }
  if (last || surviving.empty()) {
    SendJoinReply(stage_msg.origin, stage_msg.qid, surviving,
                  stage_msg.weight, stage_msg.generation);
  } else {
    ForwardToStage(stage_msg, std::move(surviving));
  }
  if (stage_msg.stream_id != 0 && stage_msg.producer.valid()) {
    DirectEnvelope env;
    env.subtype = kChunkCredit;
    env.qid = stage_msg.qid;
    env.stream_id = stage_msg.stream_id;
    env.credits = 1;
    dht_->SendDirect(stage_msg.producer.host,
                     sim::Message::Make<DirectEnvelope>(
                         dht::DhtNode::kDirectApp, "pier.credit", 21,
                         std::move(env)));
  }
}

void PierNode::OnChunkCredit(const DirectEnvelope& env) {
  auto it = chunk_streams_.find(env.stream_id);
  if (it == chunk_streams_.end()) return;  // completed or expired stream
  metrics_->credit_grants += env.credits;
  it->second.credits += env.credits;
  PumpStream(it);
}

void PierNode::OnSizeProbe(const dht::RouteMsg& msg) {
  const auto& probe = msg.body<SizeProbeMsg>();
  dht::Key k = DhtKeyFor(probe.ns, probe.key);
  size_t n =
      dht_->store().Get(probe.ns, k, dht_->network()->executor()->now())
          .size();
  DirectEnvelope env;
  env.subtype = kProbeReply;
  env.qid = probe.qid;
  env.posting_size = n;
  dht_->SendDirect(msg.origin.host,
                   sim::Message::Make<DirectEnvelope>(
                       dht::DhtNode::kDirectApp, "pier.answer", 24,
                       std::move(env)));
}

void PierNode::OnDirect(sim::HostId /*from*/, const sim::Message& msg) {
  const auto& env = msg.as<DirectEnvelope>();
  if (env.subtype == kJoinReply) {
    auto it = pending_joins_.find(env.qid);
    if (it == pending_joins_.end()) return;
    PendingJoin& pending = it->second;
    // A reply from a superseded dispatch (pre-failover) must not count its
    // weight toward the current generation's termination — drop it.
    if (env.generation != pending.generation) return;
    size_t dropped = 0;
    std::vector<JoinResultEntry> entries =
        DecodeJoinEntries(env.entries_image, &dropped);
    metrics_->tuples_dropped_deserialize += dropped;
    // The accumulator may outlive this reply's decode arena by many chunk
    // round-trips; materialize so a few retained entries don't pin whole
    // reply batches.
    for (JoinResultEntry& e : entries) {
      if (pending.entries.size() >= pending.limit) break;
      pending.entries.push_back(JoinResultEntry{
          e.join_key.Materialize(), e.payload.Materialize()});
    }
    pending.weight_received += env.weight;
    if (pending.weight_received < kFullJoinWeight) return;
    ResolveJoin(env.qid, Status::OK());
  } else if (env.subtype == kPlanRefused) {
    OnPlanRefused(env);
  } else if (env.subtype == kProbeReply) {
    auto it = pending_probes_.find(env.qid);
    if (it == pending_probes_.end()) return;
    dht_->network()->executor()->Cancel(it->second.timeout);
    ProbeCallback cb = std::move(it->second.callback);
    pending_probes_.erase(it);
    cb(Status::OK(), env.posting_size);
  } else if (env.subtype == kChunkCredit) {
    OnChunkCredit(env);
  }
}

void ExportTransportCounters(const PierMetrics& m, CounterSet* out) {
  out->Set("pier.adaptive_flushes", m.adaptive_flushes);
  out->Set("pier.credits_stalled", m.credits_stalled);
  out->Set("pier.credit_grants", m.credit_grants);
  out->Set("pier.credit_streams_expired", m.credit_streams_expired);
  out->Set("pier.credit_window_boosts", m.credit_window_boosts);
  out->Set("pier.plans_executed", m.plans_executed);
  out->Set("pier.epoch_fences", m.epoch_fences);
  out->Set("pier.epoch_stream_kicks", m.epoch_stream_kicks);
  out->Set("pier.stage_failovers", m.stage_failovers);
  out->Set("pier.hedges_sent", m.hedges_sent);
  out->Set("pier.hedges_won", m.hedges_won);
  out->Set("pier.plans_shed", m.plans_shed);
  out->Set("pier.plans_deferred", m.plans_deferred);
  out->Set("pier.partial_results", m.partial_results);
}

}  // namespace pierstack::pier
