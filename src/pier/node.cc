#include "pier/node.h"

#include <cassert>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/tokenizer.h"
#include "pier/tuple_batch.h"

namespace pierstack::pier {

namespace {

dht::Key DhtKeyFor(const std::string& ns, const Value& key) {
  return HashCombine(Fnv1a64(ns), key.Hash());
}

}  // namespace

PierNode::PierNode(dht::DhtNode* dht, PierMetrics* metrics)
    : dht_(dht), metrics_(metrics) {
  assert(dht != nullptr && metrics != nullptr);
  dht_->SetUpcallHandler(kAppJoinStage,
                         [this](const dht::RouteMsg& m) { OnJoinStage(m); });
  dht_->SetUpcallHandler(kAppSizeProbe,
                         [this](const dht::RouteMsg& m) { OnSizeProbe(m); });
  dht_->SetDirectHandler([this](sim::HostId from, const sim::Message& m) {
    OnDirect(from, m);
  });
}

void PierNode::Publish(const Schema& schema, Tuple tuple, sim::SimTime expiry,
                       dht::DhtNode::PutCallback callback) {
  ++metrics_->tuples_published;
  ++metrics_->publish_messages;
  std::vector<uint8_t> bytes = tuple.Serialize();
  metrics_->publish_bytes += bytes.size();
  dht::Key key = DhtKeyFor(schema.table_name(), tuple.IndexValue(schema));
  dht_->Put(schema.table_name(), key, std::move(bytes), expiry,
            std::move(callback));
}

void PierNode::PublishBatch(const Schema& schema, std::vector<Tuple> tuples,
                            sim::SimTime expiry,
                            dht::DhtNode::PutCallback callback) {
  if (tuples.empty()) {
    if (callback) callback(Status::OK());
    return;
  }
  // Aggregate ack: remember the first failure, fire once after the last
  // batch answers.
  struct AckState {
    size_t remaining = 0;
    Status first_error;
    dht::DhtNode::PutCallback callback;
  };
  std::shared_ptr<AckState> acks;
  if (callback) {
    acks = std::make_shared<AckState>();
    acks->callback = std::move(callback);
  }

  // One frame buffer per destination key: each tuple appends its length
  // prefix + frame in place, so the whole group ships (and is built) as a
  // single allocation instead of one buffer per tuple.
  struct Group {
    BytesWriter frames;
    size_t count = 0;
  };
  auto flush = [&](dht::Key key, Group* g) {
    if (g->count == 0) return;
    ++metrics_->publish_messages;
    dht::DhtNode::PutCallback sub;
    if (acks) {
      ++acks->remaining;
      sub = [acks](Status s) {
        if (!s.ok() && acks->first_error.ok()) acks->first_error = s;
        if (--acks->remaining == 0) acks->callback(acks->first_error);
      };
    }
    dht_->PutBatch(schema.table_name(), key, g->frames.Take(), g->count,
                   expiry, std::move(sub));
    *g = Group{};
  };

  std::unordered_map<dht::Key, Group> groups;
  for (const Tuple& t : tuples) {
    ++metrics_->tuples_published;
    size_t wire = t.WireSize();
    metrics_->publish_bytes += wire;
    dht::Key key = DhtKeyFor(schema.table_name(), t.IndexValue(schema));
    Group& g = groups[key];
    g.frames.PutVarint(wire);
    t.SerializeTo(&g.frames);
    ++g.count;
    if (g.count >= batch_options_.max_batch_tuples ||
        g.frames.size() >= batch_options_.max_batch_bytes) {
      flush(key, &g);
    }
  }
  for (auto& [key, g] : groups) flush(key, &g);
}

std::vector<Tuple> PierNode::DecodeLocalBatch(const std::string& ns,
                                              dht::Key key) {
  sim::SimTime now = dht_->network()->simulator()->now();
  std::vector<uint8_t> image = dht_->store().GetBatch(ns, key, now);
  size_t dropped = 0;
  TupleBatch batch = TupleBatch::DeserializeLossy(image, &dropped);
  metrics_->tuples_dropped_deserialize += dropped;
  return batch.TakeTuples();
}

std::vector<Tuple> PierNode::ScanLocal(const Schema& schema,
                                       const Value& key) {
  std::vector<Tuple> out;
  dht::Key k = DhtKeyFor(schema.table_name(), key);
  for (Tuple& t : DecodeLocalBatch(schema.table_name(), k)) {
    if (t.arity() <= schema.index_field()) continue;
    if (!(t.IndexValue(schema) == key)) continue;  // 64-bit collision
    out.push_back(std::move(t));
  }
  return out;
}

void PierNode::Fetch(const Schema& schema, const Value& key,
                     FetchCallback callback) {
  ++metrics_->fetches;
  dht::Key k = DhtKeyFor(schema.table_name(), key);
  size_t index_field = schema.index_field();
  // Captures the metrics sink rather than `this`: the deployment-owned
  // PierMetrics outlives any one node, so a reply landing after this
  // PierNode is gone stays safe.
  dht_->GetBatch(
      schema.table_name(), k,
      [metrics = metrics_, callback = std::move(callback), key, index_field](
          Status s, std::vector<uint8_t> image) {
        if (!s.ok()) {
          callback(s, {});
          return;
        }
        size_t dropped = 0;
        TupleBatch batch = TupleBatch::DeserializeLossy(image, &dropped);
        metrics->tuples_dropped_deserialize += dropped;
        std::vector<Tuple> tuples;
        tuples.reserve(batch.size());
        for (Tuple& t : batch.TakeTuples()) {
          if (t.arity() <= index_field) continue;
          if (!(t.at(index_field) == key)) continue;
          tuples.push_back(std::move(t));
        }
        callback(Status::OK(), std::move(tuples));
      });
}

void PierNode::ProbePostingSize(const std::string& ns, const Value& key,
                                ProbeCallback callback) {
  ++metrics_->probe_messages;
  uint64_t qid = NextQid();
  PendingProbe pending;
  pending.callback = std::move(callback);
  pending.timeout = dht_->network()->simulator()->ScheduleAfter(
      10 * sim::kSecond, [this, qid]() {
        auto it = pending_probes_.find(qid);
        if (it == pending_probes_.end()) return;
        ProbeCallback cb = std::move(it->second.callback);
        pending_probes_.erase(it);
        cb(Status::TimedOut("posting size probe"), 0);
      });
  pending_probes_[qid] = std::move(pending);
  auto body = std::make_shared<const SizeProbeMsg>(SizeProbeMsg{qid, ns, key});
  dht_->Route(DhtKeyFor(ns, key), kAppSizeProbe, body,
              ns.size() + key.WireSize() + 8, qid);
}

void PierNode::ExecuteJoin(DistributedJoin join, JoinCallback callback,
                           sim::SimTime timeout) {
  assert(!join.stages.empty());
  ++metrics_->joins_executed;
  uint64_t qid = NextQid();
  PendingJoin pending;
  pending.callback = std::move(callback);
  pending.timeout =
      dht_->network()->simulator()->ScheduleAfter(timeout, [this, qid]() {
        auto it = pending_joins_.find(qid);
        if (it == pending_joins_.end()) return;
        JoinCallback cb = std::move(it->second.callback);
        pending_joins_.erase(it);
        cb(Status::TimedOut("distributed join"), {});
      });
  pending_joins_[qid] = std::move(pending);

  JoinStageMsg msg;
  msg.qid = qid;
  msg.join = std::make_shared<const DistributedJoin>(std::move(join));
  msg.stage_idx = 0;
  msg.origin = dht_->info();
  const JoinStage& first = msg.join->stages[0];
  dht::Key target = DhtKeyFor(first.ns, first.key);
  ++metrics_->join_stage_messages;
  size_t bytes = StageMsgWireSize(msg);
  dht_->Route(target, kAppJoinStage,
              std::make_shared<const JoinStageMsg>(std::move(msg)), bytes,
              qid);
}

size_t PierNode::EntryWireSize(const JoinResultEntry& e) {
  return e.join_key.WireSize() + e.payload.WireSize();
}

size_t PierNode::StageMsgWireSize(const JoinStageMsg& m) {
  size_t bytes = 32;  // qid, stage idx, origin, limit
  for (const auto& s : m.join->stages) {
    bytes += s.ns.size() + s.key.WireSize() + 6;
    for (const auto& f : s.substring_filter) bytes += f.size() + 1;
  }
  for (const auto& e : m.incoming) bytes += EntryWireSize(e);
  return bytes;
}

std::vector<JoinResultEntry> PierNode::LocalStageEntries(
    const JoinStage& stage) {
  std::vector<JoinResultEntry> out;
  dht::Key k = DhtKeyFor(stage.ns, stage.key);
  for (Tuple& t : DecodeLocalBatch(stage.ns, k)) {
    if (t.arity() <= stage.key_col || t.arity() <= stage.join_col) continue;
    if (!(t.at(stage.key_col) == stage.key)) continue;
    if (!stage.substring_filter.empty()) {
      if (stage.filter_col >= t.arity()) continue;
      if (!t.at(stage.filter_col).is_string()) continue;
      if (!FilenameMatchesQuery(t.at(stage.filter_col).AsString(),
                                stage.substring_filter)) {
        continue;
      }
    }
    JoinResultEntry e;
    e.join_key = t.at(stage.join_col);
    if (!stage.payload_cols.empty()) {
      std::vector<Value> payload;
      payload.reserve(stage.payload_cols.size());
      for (size_t c : stage.payload_cols) {
        payload.push_back(c < t.arity() ? t.at(c) : Value());
      }
      e.payload = Tuple(std::move(payload));
    }
    out.push_back(std::move(e));
  }
  return out;
}

void PierNode::OnJoinStage(const dht::RouteMsg& msg) {
  const auto& stage_msg = msg.body<JoinStageMsg>();
  const DistributedJoin& join = *stage_msg.join;
  const JoinStage& stage = join.stages[stage_msg.stage_idx];

  std::vector<JoinResultEntry> local = LocalStageEntries(stage);

  std::vector<JoinResultEntry> surviving;
  if (stage_msg.stage_idx == 0) {
    surviving = std::move(local);
  } else {
    // Symmetric hash join between the shipped entries (left) and the local
    // posting list (right); the surviving payload is the incoming one.
    SymmetricHashJoin shj(/*left_col=*/0, /*right_col=*/0);
    shj.Reserve(stage_msg.incoming.size(), local.size());
    for (const auto& e : local) {
      shj.InsertRight(Tuple(std::vector<Value>{e.join_key}));
    }
    for (const auto& e : stage_msg.incoming) {
      auto joined = shj.InsertLeft(Tuple(std::vector<Value>{e.join_key}));
      // Duplicate local postings for the same key yield duplicate joins;
      // the chain semantics are set-based, so take at most one.
      if (!joined.empty()) surviving.push_back(e);
    }
  }

  bool last = stage_msg.stage_idx + 1 == join.stages.size();
  // The cap applies to the final answer only; truncating an intermediate
  // posting list could drop entries that survive later stages.
  if (last && surviving.size() > join.limit) surviving.resize(join.limit);
  if (last || surviving.empty()) {
    // Stream the answer directly to the query node (bypasses the overlay).
    DirectEnvelope env;
    env.subtype = kJoinReply;
    env.qid = stage_msg.qid;
    env.entries = std::move(surviving);
    size_t bytes = 16;
    for (const auto& e : env.entries) bytes += EntryWireSize(e);
    dht_->SendDirect(stage_msg.origin.host,
                     sim::Message::Make<DirectEnvelope>(
                         dht::DhtNode::kDirectApp, "pier.answer", bytes,
                         std::move(env)));
    return;
  }

  JoinStageMsg next;
  next.qid = stage_msg.qid;
  next.join = stage_msg.join;
  next.stage_idx = stage_msg.stage_idx + 1;
  next.incoming = std::move(surviving);
  next.origin = stage_msg.origin;
  metrics_->posting_entries_shipped += next.incoming.size();
  ++metrics_->join_stage_messages;
  const JoinStage& next_stage = join.stages[next.stage_idx];
  size_t bytes = StageMsgWireSize(next);
  dht_->Route(DhtKeyFor(next_stage.ns, next_stage.key), kAppJoinStage,
              std::make_shared<const JoinStageMsg>(std::move(next)), bytes,
              stage_msg.qid);
}

void PierNode::OnSizeProbe(const dht::RouteMsg& msg) {
  const auto& probe = msg.body<SizeProbeMsg>();
  dht::Key k = DhtKeyFor(probe.ns, probe.key);
  size_t n =
      dht_->store().Get(probe.ns, k, dht_->network()->simulator()->now())
          .size();
  DirectEnvelope env;
  env.subtype = kProbeReply;
  env.qid = probe.qid;
  env.posting_size = n;
  dht_->SendDirect(msg.origin.host,
                   sim::Message::Make<DirectEnvelope>(
                       dht::DhtNode::kDirectApp, "pier.answer", 24,
                       std::move(env)));
}

void PierNode::OnDirect(sim::HostId /*from*/, const sim::Message& msg) {
  const auto& env = msg.as<DirectEnvelope>();
  if (env.subtype == kJoinReply) {
    auto it = pending_joins_.find(env.qid);
    if (it == pending_joins_.end()) return;
    dht_->network()->simulator()->Cancel(it->second.timeout);
    JoinCallback cb = std::move(it->second.callback);
    pending_joins_.erase(it);
    cb(Status::OK(), env.entries);
  } else if (env.subtype == kProbeReply) {
    auto it = pending_probes_.find(env.qid);
    if (it == pending_probes_.end()) return;
    dht_->network()->simulator()->Cancel(it->second.timeout);
    ProbeCallback cb = std::move(it->second.callback);
    pending_probes_.erase(it);
    cb(Status::OK(), env.posting_size);
  }
}

}  // namespace pierstack::pier
