#include "pier/value.h"

#include <cstring>

namespace pierstack::pier {

Value::Value(std::string v) {
  auto owner = std::make_shared<const std::string>(std::move(v));
  uint32_t len = static_cast<uint32_t>(owner->size());
  v_ = StringPiece{std::move(owner), 0, len};
}

Value Value::StringSlice(StringOwner owner, size_t off, size_t len) {
  Value v;
  v.v_ = StringPiece{std::move(owner), static_cast<uint32_t>(off),
                     static_cast<uint32_t>(len)};
  return v;
}

Value StringArena::Append(std::string_view s) {
  if (!blob_) blob_ = std::make_shared<std::string>();
  // The keyword column repeats in every tuple of a posting list: reuse the
  // previous copy when one of the recent slices matches.
  for (size_t i = 0; i < memo_used_; ++i) {
    const Memo& m = memo_[i];
    if (m.len == s.size() &&
        std::string_view(blob_->data() + m.off, m.len) == s) {
      return Value::StringSlice(blob_, m.off, m.len);
    }
  }
  uint32_t off = static_cast<uint32_t>(blob_->size());
  blob_->append(s);
  Memo m{off, static_cast<uint32_t>(s.size())};
  memo_[memo_next_] = m;
  memo_next_ = (memo_next_ + 1) % kMemoSlots;
  if (memo_used_ < kMemoSlots) ++memo_used_;
  return Value::StringSlice(blob_, m.off, m.len);
}

bool operator==(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return false;
  switch (a.type()) {
    case ValueType::kUint64:
      return a.AsUint64() == b.AsUint64();
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  switch (a.type()) {
    case ValueType::kUint64:
      return a.AsUint64() < b.AsUint64();
    case ValueType::kInt64:
      return a.AsInt64() < b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() < b.AsDouble();
    case ValueType::kString:
      return a.AsString() < b.AsString();
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kUint64:
      return Mix64(AsUint64());
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt64()) ^ 0x11);
    case ValueType::kDouble: {
      uint64_t bits;
      double d = AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x22);
    }
    case ValueType::kString:
      return Fnv1a64(AsString());
  }
  return 0;
}

size_t Value::WireSize() const {
  switch (type()) {
    case ValueType::kUint64:
      return 1 + VarintSize(AsUint64());
    case ValueType::kInt64:
      return 1 + VarintSize(static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + VarintSize(AsString().size()) + AsString().size();
  }
  return 1;
}

void Value::SerializeTo(BytesWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kUint64:
      w->PutVarint(AsUint64());
      return;
    case ValueType::kInt64:
      w->PutVarint(static_cast<uint64_t>(AsInt64()));
      return;
    case ValueType::kDouble:
      w->PutDouble(AsDouble());
      return;
    case ValueType::kString:
      w->PutString(AsString());
      return;
  }
}

Result<Value> Value::Deserialize(BytesReader* r, StringArena* arena) {
  auto tag = r->GetU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<ValueType>(tag.value())) {
    case ValueType::kUint64: {
      auto v = r->GetVarint();
      if (!v.ok()) return v.status();
      return Value(v.value());
    }
    case ValueType::kInt64: {
      auto v = r->GetVarint();
      if (!v.ok()) return v.status();
      return Value(static_cast<int64_t>(v.value()));
    }
    case ValueType::kDouble: {
      auto v = r->GetDouble();
      if (!v.ok()) return v.status();
      return Value(v.value());
    }
    case ValueType::kString: {
      auto v = r->GetStringView();
      if (!v.ok()) return v.status();
      if (arena != nullptr) return arena->Append(v.value());
      return Value(std::string(v.value()));
    }
  }
  return Status::Corruption("unknown value type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kUint64:
      return std::to_string(AsUint64());
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return std::string(AsString());
  }
  return "?";
}

}  // namespace pierstack::pier
