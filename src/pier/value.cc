#include "pier/value.h"

#include <cstring>

namespace pierstack::pier {

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kUint64:
      return Mix64(AsUint64());
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt64()) ^ 0x11);
    case ValueType::kDouble: {
      uint64_t bits;
      double d = AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x22);
    }
    case ValueType::kString:
      return Fnv1a64(AsString());
  }
  return 0;
}

size_t Value::WireSize() const {
  switch (type()) {
    case ValueType::kUint64:
      return 1 + VarintSize(AsUint64());
    case ValueType::kInt64:
      return 1 + VarintSize(static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + VarintSize(AsString().size()) + AsString().size();
  }
  return 1;
}

void Value::SerializeTo(BytesWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kUint64:
      w->PutVarint(AsUint64());
      return;
    case ValueType::kInt64:
      w->PutVarint(static_cast<uint64_t>(AsInt64()));
      return;
    case ValueType::kDouble:
      w->PutDouble(AsDouble());
      return;
    case ValueType::kString:
      w->PutString(AsString());
      return;
  }
}

Result<Value> Value::Deserialize(BytesReader* r) {
  auto tag = r->GetU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<ValueType>(tag.value())) {
    case ValueType::kUint64: {
      auto v = r->GetVarint();
      if (!v.ok()) return v.status();
      return Value(v.value());
    }
    case ValueType::kInt64: {
      auto v = r->GetVarint();
      if (!v.ok()) return v.status();
      return Value(static_cast<int64_t>(v.value()));
    }
    case ValueType::kDouble: {
      auto v = r->GetDouble();
      if (!v.ok()) return v.status();
      return Value(v.value());
    }
    case ValueType::kString: {
      auto v = r->GetString();
      if (!v.ok()) return v.status();
      return Value(std::move(v).value());
    }
  }
  return Status::Corruption("unknown value type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kUint64:
      return std::to_string(AsUint64());
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace pierstack::pier
