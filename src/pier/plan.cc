#include "pier/plan.h"

#include <algorithm>
#include <cassert>

#include "common/tokenizer.h"

namespace pierstack::pier {

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

Expr Expr::Column(size_t index) {
  Expr e;
  e.kind_ = Kind::kColumn;
  e.column_ = static_cast<uint32_t>(index);
  return e;
}

Expr Expr::Literal(Value v) {
  Expr e;
  e.kind_ = Kind::kLiteral;
  e.literal_ = std::move(v);
  return e;
}

Expr Expr::Compare(Kind op, Expr lhs, Expr rhs) {
  assert(op >= Kind::kEq && op <= Kind::kGe);
  Expr e;
  e.kind_ = op;
  e.children_.reserve(2);
  e.children_.push_back(std::move(lhs));
  e.children_.push_back(std::move(rhs));
  return e;
}

Expr Expr::And(std::vector<Expr> children) {
  if (children.empty()) return True();  // vacuous conjunction
  if (children.size() == 1) return std::move(children[0]);
  Expr e;
  e.kind_ = Kind::kAnd;
  e.children_ = std::move(children);
  return e;
}

Expr Expr::Or(std::vector<Expr> children) {
  if (children.empty()) return Literal(Value(uint64_t{0}));  // vacuously false
  if (children.size() == 1) return std::move(children[0]);
  Expr e;
  e.kind_ = Kind::kOr;
  e.children_ = std::move(children);
  return e;
}

Expr Expr::Not(Expr child) {
  Expr e;
  e.kind_ = Kind::kNot;
  e.children_.push_back(std::move(child));
  return e;
}

Expr Expr::Contains(Expr haystack, std::string needle) {
  Expr e;
  e.kind_ = Kind::kContains;
  e.children_.reserve(2);
  e.children_.push_back(std::move(haystack));
  e.children_.push_back(Literal(Value(std::move(needle))));
  return e;
}

namespace {

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kUint64:
      return v.AsUint64() != 0;
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

Value Bool(bool b) { return Value(uint64_t{b ? 1u : 0u}); }

/// Three-way comparison usable across the numeric types (strings compare
/// only against strings; a cross-kind comparison is "incomparable" and
/// fails every operator).
enum class CmpResult { kLess, kEqual, kGreater, kIncomparable };

CmpResult CompareValues(const Value& a, const Value& b) {
  if (a.type() == b.type()) {
    if (a == b) return CmpResult::kEqual;
    return a < b ? CmpResult::kLess : CmpResult::kGreater;
  }
  if (a.is_string() || b.is_string()) return CmpResult::kIncomparable;
  auto widen = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kUint64:
        return static_cast<double>(v.AsUint64());
      case ValueType::kInt64:
        return static_cast<double>(v.AsInt64());
      default:
        return v.AsDouble();
    }
  };
  double x = widen(a), y = widen(b);
  if (x == y) return CmpResult::kEqual;
  return x < y ? CmpResult::kLess : CmpResult::kGreater;
}

}  // namespace

Value Expr::Eval(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return Bool(true);
    case Kind::kColumn:
      return column_ < t.arity() ? t.at(column_) : Value();
    case Kind::kLiteral:
      return literal_;
    case Kind::kEq:
    case Kind::kNe:
    case Kind::kLt:
    case Kind::kLe:
    case Kind::kGt:
    case Kind::kGe: {
      CmpResult c = CompareValues(children_[0].Eval(t), children_[1].Eval(t));
      if (c == CmpResult::kIncomparable) return Bool(kind_ == Kind::kNe);
      switch (kind_) {
        case Kind::kEq: return Bool(c == CmpResult::kEqual);
        case Kind::kNe: return Bool(c != CmpResult::kEqual);
        case Kind::kLt: return Bool(c == CmpResult::kLess);
        case Kind::kLe: return Bool(c != CmpResult::kGreater);
        case Kind::kGt: return Bool(c == CmpResult::kGreater);
        default:        return Bool(c != CmpResult::kLess);
      }
    }
    case Kind::kAnd: {
      for (const Expr& c : children_) {
        if (!Truthy(c.Eval(t))) return Bool(false);
      }
      return Bool(true);
    }
    case Kind::kOr: {
      for (const Expr& c : children_) {
        if (Truthy(c.Eval(t))) return Bool(true);
      }
      return Bool(false);
    }
    case Kind::kNot:
      return Bool(!Truthy(children_[0].Eval(t)));
    case Kind::kContains: {
      Value hay = children_[0].Eval(t);
      Value needle = children_[1].Eval(t);
      if (!hay.is_string() || !needle.is_string()) return Bool(false);
      std::string lower = ToLowerAscii(hay.AsString());
      return Bool(lower.find(needle.AsString()) != std::string::npos);
    }
  }
  return Value();
}

bool Expr::Matches(const Tuple& t) const {
  if (kind_ == Kind::kTrue) return true;
  return Truthy(Eval(t));
}

size_t Expr::WireSize() const {
  size_t bytes = 1;  // kind tag
  switch (kind_) {
    case Kind::kTrue:
      break;
    case Kind::kColumn:
      bytes += VarintSize(column_);
      break;
    case Kind::kLiteral:
      bytes += literal_.WireSize();
      break;
    default:
      bytes += VarintSize(children_.size());
      for (const Expr& c : children_) bytes += c.WireSize();
      break;
  }
  return bytes;
}

void Expr::SerializeTo(BytesWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case Kind::kTrue:
      break;
    case Kind::kColumn:
      w->PutVarint(column_);
      break;
    case Kind::kLiteral:
      literal_.SerializeTo(w);
      break;
    default:
      w->PutVarint(children_.size());
      for (const Expr& c : children_) c.SerializeTo(w);
      break;
  }
}

Result<Expr> Expr::Deserialize(BytesReader* r, int depth) {
  if (depth > 64) return Status::Corruption("expr nesting too deep");
  auto kind = r->GetU8();
  if (!kind.ok()) return kind.status();
  if (kind.value() > static_cast<uint8_t>(Kind::kContains)) {
    return Status::Corruption("unknown expr kind");
  }
  Expr e;
  e.kind_ = static_cast<Kind>(kind.value());
  switch (e.kind_) {
    case Kind::kColumn: {
      auto col = r->GetVarint();
      if (!col.ok()) return col.status();
      e.column_ = static_cast<uint32_t>(col.value());
      return e;
    }
    case Kind::kLiteral: {
      auto v = Value::Deserialize(r);
      if (!v.ok()) return v.status();
      e.literal_ = std::move(v.value());
      return e;
    }
    case Kind::kTrue:
      return e;
    default: {
      auto n = r->GetVarint();
      if (!n.ok()) return n.status();
      // Arity sanity: binary operators carry exactly two children, Not one.
      size_t want_min = 1, want_max = SIZE_MAX;
      if (e.kind_ >= Kind::kEq && e.kind_ <= Kind::kGe) want_min = want_max = 2;
      if (e.kind_ == Kind::kContains) want_min = want_max = 2;
      if (e.kind_ == Kind::kNot) want_min = want_max = 1;
      if (n.value() < want_min || n.value() > want_max ||
          n.value() > r->remaining()) {
        return Status::Corruption("bad expr arity");
      }
      e.children_.reserve(n.value());
      for (uint64_t i = 0; i < n.value(); ++i) {
        auto c = Deserialize(r, depth + 1);
        if (!c.ok()) return c.status();
        e.children_.push_back(std::move(c.value()));
      }
      return e;
    }
  }
}

std::string Expr::ToString() const {
  static const char* kOps[] = {"true", "col",  "lit", "==", "!=", "<",
                               "<=",   ">",    ">=",  "and", "or", "not",
                               "contains"};
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kColumn:
      return "$" + std::to_string(column_);
    case Kind::kLiteral:
      return literal_.ToString();
    default: {
      std::string s = "(";
      s += kOps[static_cast<size_t>(kind_)];
      for (const Expr& c : children_) {
        s += ' ';
        s += c.ToString();
      }
      s += ')';
      return s;
    }
  }
}

bool operator==(const Expr& a, const Expr& b) {
  return a.kind_ == b.kind_ && a.column_ == b.column_ &&
         a.literal_ == b.literal_ && a.children_ == b.children_;
}

// ---------------------------------------------------------------------------
// PlanNode / QueryPlan serialization
// ---------------------------------------------------------------------------

namespace {

size_t NodeWireSize(const PlanNode& n) {
  size_t bytes = 1 + VarintSize(n.ns.size()) + n.ns.size() +
                 n.key.WireSize() + VarintSize(n.key_col) +
                 VarintSize(n.join_col) + n.expr.WireSize() +
                 VarintSize(n.cols.size()) + VarintSize(n.aggs.size()) +
                 VarintSize(n.sort_col) + VarintSize(n.n) + 1 +
                 VarintSize(n.children.size());
  for (uint32_t c : n.cols) bytes += VarintSize(c);
  for (const AggregateSpec& a : n.aggs) bytes += 1 + VarintSize(a.col);
  for (uint32_t c : n.children) bytes += VarintSize(c);
  return bytes;
}

void SerializeNode(const PlanNode& n, BytesWriter* w) {
  w->PutU8(static_cast<uint8_t>(n.kind));
  w->PutString(n.ns);
  n.key.SerializeTo(w);
  w->PutVarint(n.key_col);
  w->PutVarint(n.join_col);
  n.expr.SerializeTo(w);
  w->PutVarint(n.cols.size());
  for (uint32_t c : n.cols) w->PutVarint(c);
  w->PutVarint(n.aggs.size());
  for (const AggregateSpec& a : n.aggs) {
    w->PutU8(static_cast<uint8_t>(a.kind));
    w->PutVarint(a.col);
  }
  w->PutVarint(n.sort_col);
  w->PutVarint(n.n);
  w->PutU8(n.descending ? 1 : 0);
  w->PutVarint(n.children.size());
  for (uint32_t c : n.children) w->PutVarint(c);
}

Result<PlanNode> DeserializeNode(BytesReader* r) {
  PlanNode n;
  auto kind = r->GetU8();
  if (!kind.ok()) return kind.status();
  if (kind.value() > static_cast<uint8_t>(PlanNode::Kind::kLimit)) {
    return Status::Corruption("unknown plan node kind");
  }
  n.kind = static_cast<PlanNode::Kind>(kind.value());
  auto ns = r->GetString();
  if (!ns.ok()) return ns.status();
  n.ns = std::move(ns.value());
  auto key = Value::Deserialize(r);
  if (!key.ok()) return key.status();
  n.key = std::move(key.value());
  auto key_col = r->GetVarint();
  if (!key_col.ok()) return key_col.status();
  n.key_col = static_cast<uint32_t>(key_col.value());
  auto join_col = r->GetVarint();
  if (!join_col.ok()) return join_col.status();
  n.join_col = static_cast<uint32_t>(join_col.value());
  auto expr = Expr::Deserialize(r);
  if (!expr.ok()) return expr.status();
  n.expr = std::move(expr.value());
  auto ncols = r->GetVarint();
  if (!ncols.ok()) return ncols.status();
  if (ncols.value() > r->remaining()) return Status::Corruption("plan cols");
  for (uint64_t i = 0; i < ncols.value(); ++i) {
    auto c = r->GetVarint();
    if (!c.ok()) return c.status();
    n.cols.push_back(static_cast<uint32_t>(c.value()));
  }
  auto naggs = r->GetVarint();
  if (!naggs.ok()) return naggs.status();
  if (naggs.value() > r->remaining()) return Status::Corruption("plan aggs");
  for (uint64_t i = 0; i < naggs.value(); ++i) {
    auto k = r->GetU8();
    if (!k.ok()) return k.status();
    if (k.value() > AggregateSpec::kAvg) {
      return Status::Corruption("unknown aggregate kind");
    }
    auto col = r->GetVarint();
    if (!col.ok()) return col.status();
    n.aggs.push_back(AggregateSpec{
        static_cast<AggregateSpec::Kind>(k.value()),
        static_cast<size_t>(col.value())});
  }
  auto sort_col = r->GetVarint();
  if (!sort_col.ok()) return sort_col.status();
  n.sort_col = static_cast<uint32_t>(sort_col.value());
  auto cap = r->GetVarint();
  if (!cap.ok()) return cap.status();
  n.n = cap.value();
  auto desc = r->GetU8();
  if (!desc.ok()) return desc.status();
  n.descending = desc.value() != 0;
  auto nchildren = r->GetVarint();
  if (!nchildren.ok()) return nchildren.status();
  if (nchildren.value() > r->remaining()) {
    return Status::Corruption("plan children");
  }
  for (uint64_t i = 0; i < nchildren.value(); ++i) {
    auto c = r->GetVarint();
    if (!c.ok()) return c.status();
    n.children.push_back(static_cast<uint32_t>(c.value()));
  }
  return n;
}

bool AggEq(const AggregateSpec& a, const AggregateSpec& b) {
  return a.kind == b.kind && a.col == b.col;
}

}  // namespace

bool operator==(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind || a.ns != b.ns || !(a.key == b.key) ||
      a.key_col != b.key_col || a.join_col != b.join_col ||
      a.expr != b.expr || a.cols != b.cols || a.sort_col != b.sort_col ||
      a.n != b.n || a.descending != b.descending ||
      a.children != b.children || a.aggs.size() != b.aggs.size()) {
    return false;
  }
  for (size_t i = 0; i < a.aggs.size(); ++i) {
    if (!AggEq(a.aggs[i], b.aggs[i])) return false;
  }
  return true;
}

size_t QueryPlan::WireSize() const {
  size_t bytes = VarintSize(nodes.size()) + VarintSize(root);
  for (const PlanNode& n : nodes) bytes += NodeWireSize(n);
  return bytes;
}

void QueryPlan::SerializeTo(BytesWriter* w) const {
  w->PutVarint(nodes.size());
  for (const PlanNode& n : nodes) SerializeNode(n, w);
  w->PutVarint(root);
}

std::vector<uint8_t> QueryPlan::Serialize() const {
  BytesWriter w;
  w.Reserve(WireSize());
  SerializeTo(&w);
  return w.Take();
}

Result<QueryPlan> QueryPlan::Deserialize(BytesReader* r) {
  QueryPlan plan;
  auto count = r->GetVarint();
  if (!count.ok()) return count.status();
  if (count.value() > r->remaining()) return Status::Corruption("plan size");
  plan.nodes.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto n = DeserializeNode(r);
    if (!n.ok()) return n.status();
    plan.nodes.push_back(std::move(n.value()));
  }
  auto root = r->GetVarint();
  if (!root.ok()) return root.status();
  plan.root = static_cast<uint32_t>(root.value());
  if (!plan.nodes.empty() && plan.root >= plan.nodes.size()) {
    return Status::Corruption("plan root out of range");
  }
  // Children must precede their parent in the pool (PlanBuilder's
  // invariant): this both bounds every walk — a hostile image cannot
  // encode a cycle that would hang the compiler or printer — and keeps
  // range checks local.
  for (uint32_t i = 0; i < plan.nodes.size(); ++i) {
    for (uint32_t c : plan.nodes[i].children) {
      if (c >= i) return Status::Corruption("plan child out of order");
    }
  }
  return plan;
}

Result<QueryPlan> QueryPlan::Deserialize(const std::vector<uint8_t>& image) {
  BytesReader r(image);
  auto plan = Deserialize(&r);
  if (plan.ok() && !r.exhausted()) {
    return Status::Corruption("trailing bytes after plan");
  }
  return plan;
}

std::string QueryPlan::ToString() const {
  static const char* kNames[] = {"IndexScan", "Filter",  "Project",
                                 "RehashJoin", "FetchJoin", "GroupAggregate",
                                 "TopK",      "Limit"};
  std::string out;
  std::function<void(uint32_t, int)> walk = [&](uint32_t idx, int indent) {
    const PlanNode& n = nodes[idx];
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += kNames[static_cast<size_t>(n.kind)];
    if (!n.ns.empty()) out += " " + n.ns;
    if (n.kind == PlanNode::Kind::kIndexScan) {
      out += "[" + n.key.ToString() + "]";
    }
    if (n.kind == PlanNode::Kind::kFilter) out += " " + n.expr.ToString();
    if (n.kind == PlanNode::Kind::kTopK) {
      out += " col=" + std::to_string(n.sort_col) +
             " k=" + std::to_string(n.n);
    }
    if (n.kind == PlanNode::Kind::kLimit) out += " " + std::to_string(n.n);
    if (n.kind == PlanNode::Kind::kProject) {
      out += " [";
      for (size_t i = 0; i < n.cols.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(n.cols[i]);
      }
      out += ']';
    }
    out += '\n';
    for (uint32_t c : n.children) walk(c, indent + 1);
  };
  if (!nodes.empty()) walk(root, 0);
  return out;
}

// ---------------------------------------------------------------------------
// PlanBuilder
// ---------------------------------------------------------------------------

uint32_t PlanBuilder::Add(PlanNode node) {
  plan_.nodes.push_back(std::move(node));
  uint32_t idx = static_cast<uint32_t>(plan_.nodes.size() - 1);
  plan_.root = idx;
  has_root_ = true;
  return idx;
}

PlanBuilder& PlanBuilder::IndexScan(std::string ns, Value key, size_t key_col,
                                    size_t join_col) {
  PlanNode n;
  n.kind = PlanNode::Kind::kIndexScan;
  n.ns = std::move(ns);
  n.key = std::move(key);
  n.key_col = static_cast<uint32_t>(key_col);
  n.join_col = static_cast<uint32_t>(join_col);
  Add(std::move(n));
  return *this;
}

PlanBuilder& PlanBuilder::Filter(Expr predicate) {
  assert(has_root_ && "Filter needs an input operator");
  PlanNode n;
  n.kind = PlanNode::Kind::kFilter;
  n.expr = std::move(predicate);
  n.children.push_back(plan_.root);
  Add(std::move(n));
  return *this;
}

PlanBuilder& PlanBuilder::Project(std::vector<uint32_t> cols) {
  assert(has_root_ && "Project needs an input operator");
  PlanNode n;
  n.kind = PlanNode::Kind::kProject;
  n.cols = std::move(cols);
  n.children.push_back(plan_.root);
  Add(std::move(n));
  return *this;
}

PlanBuilder& PlanBuilder::RehashJoin(std::string ns, Value key,
                                     size_t key_col, size_t join_col) {
  assert(has_root_ && "RehashJoin needs a left input");
  uint32_t left = plan_.root;
  PlanNode scan;
  scan.kind = PlanNode::Kind::kIndexScan;
  scan.ns = std::move(ns);
  scan.key = std::move(key);
  scan.key_col = static_cast<uint32_t>(key_col);
  scan.join_col = static_cast<uint32_t>(join_col);
  plan_.nodes.push_back(std::move(scan));
  uint32_t right = static_cast<uint32_t>(plan_.nodes.size() - 1);
  PlanNode join;
  join.kind = PlanNode::Kind::kRehashJoin;
  join.children = {left, right};
  Add(std::move(join));
  return *this;
}

PlanBuilder& PlanBuilder::FetchJoin(std::string ns, size_t key_col) {
  assert(has_root_ && "FetchJoin needs an input operator");
  PlanNode n;
  n.kind = PlanNode::Kind::kFetchJoin;
  n.ns = std::move(ns);
  n.key_col = static_cast<uint32_t>(key_col);
  n.children.push_back(plan_.root);
  Add(std::move(n));
  return *this;
}

PlanBuilder& PlanBuilder::GroupAggregate(std::vector<uint32_t> group_cols,
                                         std::vector<AggregateSpec> aggs) {
  assert(has_root_ && "GroupAggregate needs an input operator");
  PlanNode n;
  n.kind = PlanNode::Kind::kGroupAggregate;
  n.cols = std::move(group_cols);
  n.aggs = std::move(aggs);
  n.children.push_back(plan_.root);
  Add(std::move(n));
  return *this;
}

PlanBuilder& PlanBuilder::TopK(size_t col, size_t k, bool descending) {
  assert(has_root_ && "TopK needs an input operator");
  PlanNode n;
  n.kind = PlanNode::Kind::kTopK;
  n.sort_col = static_cast<uint32_t>(col);
  n.n = k;
  n.descending = descending;
  n.children.push_back(plan_.root);
  Add(std::move(n));
  return *this;
}

PlanBuilder& PlanBuilder::Limit(size_t n) {
  assert(has_root_ && "Limit needs an input operator");
  PlanNode node;
  node.kind = PlanNode::Kind::kLimit;
  node.n = n;
  node.children.push_back(plan_.root);
  Add(std::move(node));
  return *this;
}

// ---------------------------------------------------------------------------
// Cost stub and size-driven rewrite
// ---------------------------------------------------------------------------

namespace {

/// Chain IndexScan node indices in stage order (leftmost-deepest first),
/// plus whether every chain scan is undecorated (no Filter/Project between
/// the joins and their scans). Returns false for shapes with no scan.
bool CollectChainScans(const QueryPlan& plan, std::vector<uint32_t>* scans,
                       bool* undecorated) {
  if (plan.empty()) return false;
  *undecorated = true;
  // Descend through the unary finishers to the topmost join (or scan).
  uint32_t idx = plan.root;
  while (true) {
    const PlanNode& n = plan.nodes[idx];
    if (n.kind == PlanNode::Kind::kRehashJoin ||
        n.kind == PlanNode::Kind::kIndexScan) {
      break;
    }
    if (n.children.size() != 1) return false;
    idx = n.children[0];
  }
  // Walk the left-deep join spine, collecting right scans in reverse.
  std::vector<uint32_t> rights;
  while (plan.nodes[idx].kind == PlanNode::Kind::kRehashJoin) {
    const PlanNode& join = plan.nodes[idx];
    if (join.children.size() != 2) return false;
    uint32_t right = join.children[1];
    while (plan.nodes[right].kind == PlanNode::Kind::kFilter) {
      *undecorated = false;
      if (plan.nodes[right].children.size() != 1) return false;
      right = plan.nodes[right].children[0];
    }
    if (plan.nodes[right].kind != PlanNode::Kind::kIndexScan) return false;
    rights.push_back(right);
    idx = join.children[0];
  }
  // Stage 0: the leftmost leaf, possibly dressed with Filter/Project.
  while (plan.nodes[idx].kind == PlanNode::Kind::kFilter ||
         plan.nodes[idx].kind == PlanNode::Kind::kProject) {
    *undecorated = false;
    if (plan.nodes[idx].children.size() != 1) return false;
    idx = plan.nodes[idx].children[0];
  }
  if (plan.nodes[idx].kind != PlanNode::Kind::kIndexScan) return false;
  scans->push_back(idx);
  for (auto it = rights.rbegin(); it != rights.rend(); ++it) {
    scans->push_back(*it);
  }
  return true;
}

/// For a single-scan plan whose stage-0 filter is a conjunction of
/// Contains(Column(c), literal) terms (the InvertedCache shape), returns
/// the Filter node index, or UINT32_MAX.
uint32_t FindContainsFilter(const QueryPlan& plan, uint32_t scan_idx) {
  for (uint32_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& n = plan.nodes[i];
    if (n.kind != PlanNode::Kind::kFilter) continue;
    if (n.children.size() == 1 && n.children[0] == scan_idx) return i;
  }
  return UINT32_MAX;
}

/// Decomposes `e` into Contains(Column(col), string literal) conjuncts.
/// Returns false when any conjunct has a different shape.
bool DecomposeContains(const Expr& e, uint32_t* col,
                       std::vector<std::string>* needles) {
  if (e.kind() == Expr::Kind::kAnd) {
    for (const Expr& c : e.children()) {
      if (!DecomposeContains(c, col, needles)) return false;
    }
    return true;
  }
  if (e.kind() != Expr::Kind::kContains) return false;
  const Expr& hay = e.children()[0];
  const Expr& needle = e.children()[1];
  if (hay.kind() != Expr::Kind::kColumn ||
      needle.kind() != Expr::Kind::kLiteral ||
      !needle.literal().is_string()) {
    return false;
  }
  if (*col != UINT32_MAX && *col != hay.column()) return false;
  *col = static_cast<uint32_t>(hay.column());
  needles->push_back(std::string(needle.literal().AsString()));
  return true;
}

}  // namespace

PlanCostEstimate EstimatePlanCost(const QueryPlan& plan,
                                  const PostingSizeFn& posting_size) {
  PlanCostEstimate cost;
  std::vector<uint32_t> scans;
  bool undecorated = false;
  if (!CollectChainScans(plan, &scans, &undecorated)) return cost;
  uint64_t running = 0;
  for (size_t i = 0; i < scans.size(); ++i) {
    const PlanNode& scan = plan.nodes[scans[i]];
    uint64_t local = posting_size(scan.ns, scan.key);
    cost.scanned += local;
    ++cost.stage_messages;
    if (i == 0) {
      running = local;
    } else {
      cost.entries_shipped += running;
      running = std::min(running, local);
    }
  }
  return cost;
}

std::vector<std::pair<std::string, Value>> CollectProbeTargets(
    const QueryPlan& plan) {
  std::vector<std::pair<std::string, Value>> targets;
  std::vector<uint32_t> scans;
  bool undecorated = false;
  if (!CollectChainScans(plan, &scans, &undecorated)) return targets;
  for (uint32_t idx : scans) {
    targets.emplace_back(plan.nodes[idx].ns, plan.nodes[idx].key);
  }
  if (scans.size() == 1) {
    // Single-site shape: every Contains literal is a candidate routing key.
    uint32_t filter = FindContainsFilter(plan, scans[0]);
    if (filter != UINT32_MAX) {
      uint32_t col = UINT32_MAX;
      std::vector<std::string> needles;
      if (DecomposeContains(plan.nodes[filter].expr, &col, &needles)) {
        for (std::string& s : needles) {
          targets.emplace_back(plan.nodes[scans[0]].ns, Value(std::move(s)));
        }
      }
    }
  }
  return targets;
}

bool ReorderByPostingSize(QueryPlan* plan, const PostingSizeFn& posting_size) {
  std::vector<uint32_t> scans;
  bool undecorated = false;
  if (!CollectChainScans(*plan, &scans, &undecorated)) return false;

  if (scans.size() > 1) {
    // Multi-stage chain: permute the scan *keys* smallest-first. Only safe
    // when no stage carries position-dependent dressing (filters, payload
    // projections) and every scan reads the same table with the same
    // column layout — the compiled search chain qualifies; a key moved
    // onto a different namespace would scan a table it was never
    // published to.
    if (!undecorated) return false;
    for (uint32_t idx : scans) {
      const PlanNode& scan = plan->nodes[idx];
      const PlanNode& first = plan->nodes[scans[0]];
      if (scan.ns != first.ns || scan.key_col != first.key_col ||
          scan.join_col != first.join_col) {
        return false;
      }
    }
    std::vector<std::pair<size_t, Value>> sized;
    sized.reserve(scans.size());
    for (uint32_t idx : scans) {
      const PlanNode& scan = plan->nodes[idx];
      sized.emplace_back(posting_size(scan.ns, scan.key), scan.key);
    }
    std::stable_sort(sized.begin(), sized.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    bool changed = false;
    for (size_t i = 0; i < scans.size(); ++i) {
      PlanNode& scan = plan->nodes[scans[i]];
      if (!(scan.key == sized[i].second)) {
        scan.key = sized[i].second;
        changed = true;
      }
    }
    return changed;
  }

  // Single-site shape (InvertedCache): re-root the scan at the cheapest
  // term among {scan key} ∪ {Contains literals}; the displaced key becomes
  // a Contains term itself.
  uint32_t scan_idx = scans[0];
  PlanNode& scan = plan->nodes[scan_idx];
  if (!scan.key.is_string()) return false;
  uint32_t filter_idx = FindContainsFilter(*plan, scan_idx);
  if (filter_idx == UINT32_MAX) return false;
  uint32_t col = UINT32_MAX;
  std::vector<std::string> needles;
  if (!DecomposeContains(plan->nodes[filter_idx].expr, &col, &needles) ||
      needles.empty()) {
    return false;
  }
  std::string key_term(scan.key.AsString());
  size_t best_size = posting_size(scan.ns, scan.key);
  size_t best = SIZE_MAX;  // index into needles; SIZE_MAX = keep the key
  for (size_t i = 0; i < needles.size(); ++i) {
    size_t sz = posting_size(scan.ns, Value(needles[i]));
    if (sz < best_size) {
      best_size = sz;
      best = i;
    }
  }
  if (best == SIZE_MAX) return false;
  scan.key = Value(needles[best]);
  needles[best] = key_term;
  std::vector<Expr> conjuncts;
  conjuncts.reserve(needles.size());
  for (std::string& s : needles) {
    conjuncts.push_back(Expr::Contains(Expr::Column(col), std::move(s)));
  }
  plan->nodes[filter_idx].expr = Expr::And(std::move(conjuncts));
  return true;
}

}  // namespace pierstack::pier
