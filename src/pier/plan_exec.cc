#include "pier/plan_exec.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "pier/node.h"

namespace pierstack::pier {

size_t ExecStage::WireSize() const {
  return ns.size() + key.WireSize() + filter.WireSize() +
         payload_cols.size() + 6;
}

namespace {

using NodeKind = PlanNode::Kind;

bool IsUnaryFinisher(NodeKind k) {
  return k == NodeKind::kFilter || k == NodeKind::kProject ||
         k == NodeKind::kGroupAggregate || k == NodeKind::kTopK ||
         k == NodeKind::kLimit || k == NodeKind::kFetchJoin;
}

Result<LocalOpSpec> ToLocalOp(const PlanNode& n) {
  LocalOpSpec op;
  switch (n.kind) {
    case NodeKind::kFilter:
      op.kind = LocalOpSpec::Kind::kFilter;
      op.expr = n.expr;
      return op;
    case NodeKind::kProject:
      op.kind = LocalOpSpec::Kind::kProject;
      op.cols.assign(n.cols.begin(), n.cols.end());
      return op;
    case NodeKind::kGroupAggregate:
      op.kind = LocalOpSpec::Kind::kGroupAggregate;
      op.cols.assign(n.cols.begin(), n.cols.end());
      op.aggs = n.aggs;
      return op;
    case NodeKind::kTopK:
      op.kind = LocalOpSpec::Kind::kTopK;
      op.sort_col = n.sort_col;
      op.n = static_cast<size_t>(n.n);
      op.descending = n.descending;
      return op;
    case NodeKind::kLimit:
      op.kind = LocalOpSpec::Kind::kLimit;
      op.n = static_cast<size_t>(n.n);
      return op;
    default:
      return Status::InvalidArgument("operator cannot run as a finisher");
  }
}

ExecStage StageFromScan(const PlanNode& scan) {
  ExecStage stage;
  stage.ns = scan.ns;
  stage.key = scan.key;
  stage.key_col = scan.key_col;
  stage.join_col = scan.join_col;
  return stage;
}

/// Compiles a scan possibly dressed with Filters (and, when
/// `allow_payload`, one Project) into a distributed stage. `idx` points at
/// the topmost dressing node.
Result<ExecStage> CompileStage(const QueryPlan& plan, uint32_t idx,
                               bool allow_payload) {
  std::vector<uint32_t> dressing;  // root -> leaf order
  while (plan.nodes[idx].kind == NodeKind::kFilter ||
         plan.nodes[idx].kind == NodeKind::kProject) {
    if (plan.nodes[idx].children.size() != 1) {
      return Status::InvalidArgument("malformed unary plan node");
    }
    dressing.push_back(idx);
    idx = plan.nodes[idx].children[0];
  }
  if (plan.nodes[idx].kind != NodeKind::kIndexScan) {
    return Status::InvalidArgument(
        "distributed stage input must be an IndexScan");
  }
  ExecStage stage = StageFromScan(plan.nodes[idx]);
  std::vector<Expr> filters;
  bool projected = false;
  // Execution order is leaf-up: reverse of the walk.
  for (auto it = dressing.rbegin(); it != dressing.rend(); ++it) {
    const PlanNode& n = plan.nodes[*it];
    if (n.kind == NodeKind::kFilter) {
      if (projected) {
        return Status::InvalidArgument(
            "stage filter above stage projection is unsupported");
      }
      filters.push_back(n.expr);
    } else {
      if (!allow_payload || projected) {
        return Status::InvalidArgument(
            "only the chain's first stage may project a payload");
      }
      stage.payload_cols.assign(n.cols.begin(), n.cols.end());
      projected = true;
    }
  }
  if (!filters.empty()) stage.filter = Expr::And(std::move(filters));
  return stage;
}

}  // namespace

Result<CompiledPlan> CompilePlan(const QueryPlan& plan) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  if (plan.root >= plan.nodes.size()) {
    return Status::InvalidArgument("plan root out of range");
  }
  CompiledPlan out;

  // Phase 1: peel the unary finishers off the root until the distributed
  // portion (a join spine or a dressed scan). Nodes above the FetchJoin
  // become tuple_ops, the rest entry-side candidates.
  std::vector<uint32_t> pending;  // root -> down order
  std::vector<uint32_t> above_fetch;
  uint32_t idx = plan.root;
  while (IsUnaryFinisher(plan.nodes[idx].kind)) {
    const PlanNode& n = plan.nodes[idx];
    if (n.children.size() != 1) {
      return Status::InvalidArgument("malformed unary plan node");
    }
    if (n.kind == NodeKind::kFetchJoin) {
      if (out.fetch) {
        return Status::InvalidArgument("multiple FetchJoin operators");
      }
      out.fetch = true;
      out.fetch_ns = n.ns;
      out.fetch_key_col = n.key_col;
      above_fetch = std::move(pending);
      pending.clear();
    } else {
      pending.push_back(idx);
    }
    idx = n.children[0];
    // A Filter/Project adjacent to a single scan is stage dressing, not a
    // finisher — stop peeling once only dressing-compatible nodes remain
    // below. (Detected inside CompileStage; here we just stop at the scan
    // or join.)
    if (plan.nodes[idx].kind == NodeKind::kIndexScan ||
        plan.nodes[idx].kind == NodeKind::kRehashJoin) {
      break;
    }
  }

  // Phase 2: compile the distributed portion.
  if (plan.nodes[idx].kind == NodeKind::kRehashJoin) {
    // Left-deep join spine: right inputs are later stages, the leftmost
    // leaf is stage 0 (the only stage that contributes entry payload).
    std::vector<uint32_t> right_tops;
    while (plan.nodes[idx].kind == NodeKind::kRehashJoin) {
      if (plan.nodes[idx].children.size() != 2) {
        return Status::InvalidArgument("RehashJoin needs two inputs");
      }
      right_tops.push_back(plan.nodes[idx].children[1]);
      idx = plan.nodes[idx].children[0];
    }
    auto first = CompileStage(plan, idx, /*allow_payload=*/true);
    if (!first.ok()) return first.status();
    out.staged.stages.push_back(std::move(first.value()));
    for (auto it = right_tops.rbegin(); it != right_tops.rend(); ++it) {
      auto stage = CompileStage(plan, *it, /*allow_payload=*/false);
      if (!stage.ok()) return stage.status();
      out.staged.stages.push_back(std::move(stage.value()));
    }
  } else {
    // Single-site shape: the dressing below the peeled finishers (if the
    // walk stopped early) plus whatever Filter/Project prefix of the
    // peeled list sits directly above the scan executes AT the site.
    // Execution order of `pending` is reversed (leaf-up).
    std::vector<uint32_t> exec_order(pending.rbegin(), pending.rend());
    size_t pushdown = 0;
    bool projected = false;
    while (pushdown < exec_order.size()) {
      NodeKind k = plan.nodes[exec_order[pushdown]].kind;
      if (k == NodeKind::kFilter && !projected) {
        ++pushdown;
      } else if (k == NodeKind::kProject && !projected) {
        projected = true;
        ++pushdown;
      } else {
        break;
      }
    }
    // CompileStage re-walks from the topmost pushed-down node.
    uint32_t stage_top = pushdown > 0 ? exec_order[pushdown - 1] : idx;
    auto stage = CompileStage(plan, stage_top, /*allow_payload=*/true);
    if (!stage.ok()) return stage.status();
    out.staged.stages.push_back(std::move(stage.value()));
    // The finishers that did not push down, back in root->down order.
    std::vector<uint32_t> rest(
        exec_order.begin() + static_cast<ptrdiff_t>(pushdown),
        exec_order.end());
    pending.assign(rest.rbegin(), rest.rend());
  }

  // Phase 3: materialize the finisher lists (execution order = reversed).
  // Limits stay positional — a Limit below a TopK must cut the input the
  // TopK sees, not the final answer.
  auto emit = [&](const std::vector<uint32_t>& list,
                  std::vector<LocalOpSpec>* ops) -> Status {
    for (auto it = list.rbegin(); it != list.rend(); ++it) {
      auto op = ToLocalOp(plan.nodes[*it]);
      if (!op.ok()) return op.status();
      ops->push_back(std::move(op.value()));
    }
    return Status::OK();
  };
  Status s = emit(pending, &out.entry_ops);
  if (!s.ok()) return s;
  s = emit(above_fetch, &out.tuple_ops);
  if (!s.ok()) return s;

  // Only an OUTERMOST Limit is the plan's answer cap — hoisted so the
  // staged engine can truncate at the last stage and the fetch leg can
  // bound its key set. Inner Limits keep their place in the pipeline.
  std::vector<LocalOpSpec>* last_ops =
      out.fetch ? &out.tuple_ops : &out.entry_ops;
  if (!last_ops->empty() &&
      last_ops->back().kind == LocalOpSpec::Kind::kLimit) {
    out.limit = last_ops->back().n;
    last_ops->pop_back();
  }
  out.staged.limit = out.limit;
  out.staged.cap_results = out.entry_ops.empty() && out.tuple_ops.empty();
  return out;
}

std::vector<Tuple> ApplyLocalOps(std::vector<Tuple> input,
                                 const std::vector<LocalOpSpec>& ops) {
  if (ops.empty()) return input;
  std::unique_ptr<Operator> tree =
      std::make_unique<VectorScan>(std::move(input));
  for (const LocalOpSpec& op : ops) {
    switch (op.kind) {
      case LocalOpSpec::Kind::kFilter:
        tree = std::make_unique<Selection>(
            std::move(tree),
            [expr = op.expr](const Tuple& t) { return expr.Matches(t); });
        break;
      case LocalOpSpec::Kind::kProject:
        tree = std::make_unique<Projection>(std::move(tree), op.cols);
        break;
      case LocalOpSpec::Kind::kGroupAggregate:
        tree = std::make_unique<GroupByAggregate>(std::move(tree), op.cols,
                                                  op.aggs);
        break;
      case LocalOpSpec::Kind::kTopK:
        tree = std::make_unique<TopK>(std::move(tree), op.sort_col, op.n,
                                      op.descending);
        break;
      case LocalOpSpec::Kind::kLimit:
        tree = std::make_unique<Limit>(std::move(tree), op.n);
        break;
    }
  }
  return Collect(tree.get());
}

// ---------------------------------------------------------------------------
// PierNode::ExecutePlan — the generic plan entry point (declared in
// node.h; lives here with the rest of the plan machinery).
// ---------------------------------------------------------------------------

void PierNode::ExecutePlan(QueryPlan plan, PlanCallback callback,
                           sim::SimTime timeout) {
  auto compiled = CompilePlan(plan);
  if (!compiled.ok()) {
    callback(compiled.status(), {}, Completeness{});
    return;
  }
  ++metrics_->plans_executed;
  auto cp = std::make_shared<const CompiledPlan>(std::move(compiled.value()));
  auto staged = std::make_shared<const StagedQuery>(cp->staged);
  sim::Executor* simulator = dht_->network()->executor();
  sim::SimTime deadline = simulator->now() + timeout;
  // The staged leg runs with top_level=false: the plan is the top-level
  // query here, and counts its own (merged) completeness exactly once at
  // whichever resolution path fires below.
  ExecuteStaged(
      std::move(staged),
      [this, cp, callback = std::move(callback), deadline](
          Status s, std::vector<JoinResultEntry> entries,
          const Completeness& stage_c) mutable {
        Completeness plan_c = stage_c;
        // A failed staged leg still carries whatever entries arrived — the
        // completeness record labels the gap instead of the old behavior
        // of zeroing out the partial answer on TimedOut.
        std::vector<Tuple> rows;
        rows.reserve(entries.size());
        for (JoinResultEntry& e : entries) {
          rows.push_back(Tuple::Concat(
              Tuple(std::vector<Value>{std::move(e.join_key)}), e.payload));
        }
        rows = ApplyLocalOps(std::move(rows), cp->entry_ops);
        if (!cp->fetch) {
          if (rows.size() > cp->limit) rows.resize(cp->limit);
          if (!plan_c.exact) ++metrics_->partial_results;
          callback(std::move(s), std::move(rows), plan_c);
          return;
        }
        // Fetch leg: resolve the surviving join keys (column 0) through
        // one owner-coalesced fetch. Dedupe before truncating (duplicate
        // keys must not evict distinct results at the cap); skip the
        // truncation when a post-fetch finisher needs every candidate.
        std::vector<Value> keys;
        keys.reserve(rows.size());
        std::unordered_map<uint64_t, std::vector<size_t>> seen;
        for (const Tuple& r : rows) {
          if (r.arity() == 0) continue;
          const Value& k = r.at(0);
          std::vector<size_t>& bucket = seen[k.Hash()];
          bool dup = false;
          for (size_t i : bucket) {
            if (keys[i] == k) {
              dup = true;
              break;
            }
          }
          if (dup) continue;
          bucket.push_back(keys.size());
          keys.push_back(k.Materialize());
        }
        if (cp->tuple_ops.empty() && keys.size() > cp->limit) {
          keys.resize(cp->limit);
        }
        if (keys.empty()) {
          if (!plan_c.exact) ++metrics_->partial_results;
          callback(std::move(s), {}, plan_c);
          return;
        }
        sim::Executor* simulator = dht_->network()->executor();
        // The fetch leg runs inside the plan's remaining deadline budget:
        // a dead Item owner must not hang the query past its timeout.
        auto done = std::make_shared<bool>(false);
        sim::SimTime remaining =
            deadline > simulator->now() ? deadline - simulator->now() : 1;
        sim::EventId watchdog = simulator->ScheduleAfter(
            dht_->host(), remaining,
            [metrics = metrics_, done, callback, plan_c]() mutable {
              if (*done) return;
              *done = true;
              // The fetch leg never reported: the whole leg is missing.
              plan_c.exact = false;
              plan_c.coverage_fraction = 0.0;
              ++metrics->partial_results;
              callback(Status::TimedOut("plan item fetch"), {}, plan_c);
            });
        FetchManyInternal(
            cp->fetch_ns, cp->fetch_key_col, std::move(keys),
            [this, cp, callback, done, watchdog, plan_c,
             staged_status = std::move(s)](
                Status fs, std::vector<Tuple> tuples,
                const Completeness& fetch_c) mutable {
              if (*done) return;  // watchdog already resolved the query
              *done = true;
              dht_->network()->executor()->Cancel(watchdog);
              // Best-effort, like the per-id loop this generalizes: a dead
              // owner must not zero out what the others delivered — the
              // merged completeness record carries the fetch leg's gap.
              (void)fs;
              plan_c.Merge(fetch_c);
              tuples = ApplyLocalOps(std::move(tuples), cp->tuple_ops);
              if (tuples.size() > cp->limit) tuples.resize(cp->limit);
              if (!plan_c.exact) ++metrics_->partial_results;
              callback(staged_status.ok() ? Status::OK()
                                          : std::move(staged_status),
                       std::move(tuples), plan_c);
            },
            /*top_level=*/false);
      },
      timeout, /*top_level=*/false);
}

}  // namespace pierstack::pier
