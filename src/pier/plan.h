// Declarative query plans: serializable operator graphs executed over the
// DHT (paper Sections 3–4: the DHT hosts a *general* relational query
// processor — queries arrive as operator graphs, not hardwired code paths).
//
// A QueryPlan is a DAG of operator nodes held in a flat node pool:
//   IndexScan(ns, key)  — posting-list scan at the key's owner,
//   Filter(Expr)        — serializable predicate over the stored tuple,
//   Project(cols)       — column subset carried onward as payload,
//   RehashJoin          — distributed equi-join with the next keyword's
//                         posting list (Figure 2's join chain),
//   FetchJoin(ns)       — resolve surviving join keys to full tuples
//                         (owner-coalesced, the plans' final join),
//   GroupAggregate / TopK / Limit — query-node finishing operators.
//
// Predicates and projections are a small serializable Expr tree (column
// refs, literals, comparisons, boolean connectives, substring match)
// instead of std::function, so whole plans cross the wire: a plan is built
// once with PlanBuilder, shipped stage by stage over the rehash/credit
// transport, and executed by PierNode::ExecutePlan (see plan_exec.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "pier/ops.h"
#include "pier/schema.h"

namespace pierstack::pier {

/// Serializable scalar expression over one tuple. Value semantics: copying
/// an Expr deep-copies its (usually tiny) tree.
class Expr {
 public:
  enum class Kind : uint8_t {
    kTrue = 0,      ///< Constant true (the no-op filter).
    kColumn = 1,    ///< Tuple column reference.
    kLiteral = 2,   ///< Constant Value.
    kEq = 3,
    kNe = 4,
    kLt = 5,
    kLe = 6,
    kGt = 7,
    kGe = 8,
    kAnd = 9,       ///< N-ary conjunction.
    kOr = 10,       ///< N-ary disjunction.
    kNot = 11,
    /// Case-insensitive substring test: the needle (child 1) occurs in the
    /// lower-cased haystack string (child 0) — exactly the
    /// FilenameMatchesQuery rule the InvertedCache plan filters with.
    kContains = 12,
  };

  Expr() : kind_(Kind::kTrue) {}

  static Expr True() { return Expr(); }
  static Expr Column(size_t index);
  static Expr Literal(Value v);
  static Expr Compare(Kind op, Expr lhs, Expr rhs);
  static Expr Eq(Expr l, Expr r) { return Compare(Kind::kEq, std::move(l), std::move(r)); }
  static Expr Ne(Expr l, Expr r) { return Compare(Kind::kNe, std::move(l), std::move(r)); }
  static Expr Lt(Expr l, Expr r) { return Compare(Kind::kLt, std::move(l), std::move(r)); }
  static Expr Le(Expr l, Expr r) { return Compare(Kind::kLe, std::move(l), std::move(r)); }
  static Expr Gt(Expr l, Expr r) { return Compare(Kind::kGt, std::move(l), std::move(r)); }
  static Expr Ge(Expr l, Expr r) { return Compare(Kind::kGe, std::move(l), std::move(r)); }
  static Expr And(std::vector<Expr> children);
  static Expr Or(std::vector<Expr> children);
  static Expr Not(Expr child);
  static Expr Contains(Expr haystack, std::string needle);

  Kind kind() const { return kind_; }
  bool is_true() const { return kind_ == Kind::kTrue; }
  size_t column() const { return column_; }
  const Value& literal() const { return literal_; }
  const std::vector<Expr>& children() const { return children_; }

  /// Evaluates over `t`. Out-of-range columns and type mismatches yield
  /// Value() (uint64 0), which is falsy — a malformed predicate filters
  /// everything rather than crashing a remote stage.
  Value Eval(const Tuple& t) const;
  /// Eval truthiness: non-zero numerics, non-empty strings.
  bool Matches(const Tuple& t) const;

  size_t WireSize() const;
  void SerializeTo(BytesWriter* w) const;
  /// Depth-capped (64) so a hostile image cannot blow the stack.
  static Result<Expr> Deserialize(BytesReader* r, int depth = 0);

  std::string ToString() const;

  friend bool operator==(const Expr& a, const Expr& b);
  friend bool operator!=(const Expr& a, const Expr& b) { return !(a == b); }

 private:
  Kind kind_;
  uint32_t column_ = 0;
  Value literal_;
  std::vector<Expr> children_;
};

/// One operator node of a QueryPlan. Which fields are meaningful depends on
/// `kind`; unused fields keep their defaults (and serialize as such, so
/// structural equality is well-defined).
struct PlanNode {
  enum class Kind : uint8_t {
    kIndexScan = 0,
    kFilter = 1,
    kProject = 2,
    kRehashJoin = 3,
    kFetchJoin = 4,
    kGroupAggregate = 5,
    kTopK = 6,
    kLimit = 7,
  };

  Kind kind = Kind::kIndexScan;
  std::string ns;        ///< kIndexScan / kFetchJoin: table namespace.
  Value key;             ///< kIndexScan: DHT key value.
  uint32_t key_col = 0;  ///< kIndexScan: key column; kFetchJoin: index field.
  uint32_t join_col = 1; ///< kIndexScan: join attribute column.
  Expr expr;             ///< kFilter predicate.
  std::vector<uint32_t> cols;       ///< kProject / kGroupAggregate groups.
  std::vector<AggregateSpec> aggs;  ///< kGroupAggregate.
  uint32_t sort_col = 0;            ///< kTopK.
  uint64_t n = 0;                   ///< kTopK k / kLimit cap.
  bool descending = true;           ///< kTopK order.
  std::vector<uint32_t> children;   ///< Indices into QueryPlan::nodes.

  friend bool operator==(const PlanNode& a, const PlanNode& b);
  friend bool operator!=(const PlanNode& a, const PlanNode& b) {
    return !(a == b);
  }
};

/// A query plan: operator nodes in a flat pool, `root` the output operator.
struct QueryPlan {
  std::vector<PlanNode> nodes;
  uint32_t root = 0;

  bool empty() const { return nodes.empty(); }
  const PlanNode& at(uint32_t i) const { return nodes[i]; }

  size_t WireSize() const;
  void SerializeTo(BytesWriter* w) const;
  std::vector<uint8_t> Serialize() const;
  static Result<QueryPlan> Deserialize(BytesReader* r);
  static Result<QueryPlan> Deserialize(const std::vector<uint8_t>& image);

  std::string ToString() const;

  friend bool operator==(const QueryPlan& a, const QueryPlan& b) {
    return a.root == b.root && a.nodes == b.nodes;
  }
  friend bool operator!=(const QueryPlan& a, const QueryPlan& b) {
    return !(a == b);
  }
};

/// Fluent plan construction. Each call wraps or extends the current root:
///
///   QueryPlan plan = PlanBuilder()
///       .IndexScan("inverted", Value("madonna"))
///       .RehashJoin("inverted", Value("prayer"))
///       .FetchJoin("item")
///       .TopK(kItemFilesize, 10)
///       .Limit(100)
///       .Build();
///
/// Column-reference contract: a Filter/Project adjacent to an IndexScan
/// executes AT the scan's owner over the stored tuple (filter pushdown);
/// operators above the distributed portion run at the query node over
/// [join_key, payload...] rows — column 0 is the join key — and operators
/// above a FetchJoin see the fetched table's own layout.
class PlanBuilder {
 public:
  PlanBuilder& IndexScan(std::string ns, Value key, size_t key_col = 0,
                         size_t join_col = 1);
  PlanBuilder& Filter(Expr predicate);
  PlanBuilder& Project(std::vector<uint32_t> cols);
  /// Joins the current plan with a fresh IndexScan on the join attribute —
  /// the next link of the keyword chain.
  PlanBuilder& RehashJoin(std::string ns, Value key, size_t key_col = 0,
                          size_t join_col = 1);
  PlanBuilder& FetchJoin(std::string ns, size_t key_col = 0);
  PlanBuilder& GroupAggregate(std::vector<uint32_t> group_cols,
                              std::vector<AggregateSpec> aggs);
  PlanBuilder& TopK(size_t col, size_t k, bool descending = true);
  PlanBuilder& Limit(size_t n);

  QueryPlan Build() { return std::move(plan_); }

 private:
  uint32_t Add(PlanNode node);
  QueryPlan plan_;
  bool has_root_ = false;
};

/// Posting-list size oracle fed by ProbePostingSize results (or the local
/// store, in tests).
using PostingSizeFn =
    std::function<size_t(const std::string& ns, const Value& key)>;

/// Cost stub for a compiled-shape plan, fed by posting-size probes. Counts
/// what the distributed executor would ship, under the independence
/// assumption that a join never grows an entry list (each stage survives
/// min(incoming, local) entries).
struct PlanCostEstimate {
  uint64_t scanned = 0;          ///< Tuples read by the stage scans.
  uint64_t entries_shipped = 0;  ///< Entries rehashed between stages.
  uint64_t stage_messages = 0;   ///< Routed stage messages (one per stage).
};
PlanCostEstimate EstimatePlanCost(const QueryPlan& plan,
                                  const PostingSizeFn& posting_size);

/// The (ns, key) pairs a size-driven rewrite of `plan` would need probed:
/// every chain IndexScan key, plus — for a single-site scan filtered by
/// substring terms — each Contains literal (a candidate routing key).
std::vector<std::pair<std::string, Value>> CollectProbeTargets(
    const QueryPlan& plan);

/// The "smaller posting lists first" optimization as a plan-rewrite pass
/// (paper Section 3.2). Reorders an undecorated RehashJoin chain's scan
/// keys smallest-first, and re-roots a single-site Contains-filtered scan
/// at its cheapest term (the InvertedCache site choice). Plans whose chain
/// stages carry filters or projections are left untouched (stage dressing
/// is position-dependent). Returns true when the plan changed.
bool ReorderByPostingSize(QueryPlan* plan, const PostingSizeFn& posting_size);

}  // namespace pierstack::pier
