// Value: the dynamic typed cell of PIER tuples.
//
// Strings are shared immutable slices: a string value references a span of
// a shared payload (either its own allocation, or a batch-wide string
// arena), so copying a Value — the innermost operation of every join,
// projection and rehash — is a refcount bump instead of a heap-allocating
// string copy, and batch deserialization materializes N string values with
// ZERO per-string allocations (StringArena packs all decoded bytes into
// one shared blob).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>

#include "common/bytes.h"
#include "common/hashing.h"

namespace pierstack::pier {

class StringArena;

/// Field types supported by the engine.
enum class ValueType : uint8_t {
  kUint64 = 0,  // ids, sizes, addresses
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// A dynamically typed value. Small, cheaply copyable, hashable.
class Value {
 public:
  /// Shared storage behind one or many string values.
  using StringOwner = std::shared_ptr<const std::string>;

  Value() : v_(uint64_t{0}) {}
  explicit Value(uint64_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v);
  static Value OfString(std::string_view s) { return Value(std::string(s)); }
  /// A value referencing `len` bytes of `owner` at `off` — the arena path.
  static Value StringSlice(StringOwner owner, size_t off, size_t len);

  ValueType type() const { return static_cast<ValueType>(v_.index()); }

  uint64_t AsUint64() const { return std::get<uint64_t>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  std::string_view AsString() const {
    return std::get<StringPiece>(v_).view();
  }
  /// The shared storage behind a string value (sharing diagnostics).
  const StringOwner& string_owner() const {
    return std::get<StringPiece>(v_).owner;
  }

  bool is_string() const { return type() == ValueType::kString; }

  /// A copy that owns exactly its own bytes: a string value backed by a
  /// shared batch arena is re-homed into a fresh allocation, so retaining
  /// the copy no longer pins the arena. Non-strings return themselves.
  Value Materialize() const {
    if (!is_string()) return *this;
    return Value(std::string(AsString()));
  }

  /// Stable 64-bit hash (DHT publishing key, join bucketing).
  uint64_t Hash() const;

  /// Serialized wire size in bytes (type tag included).
  size_t WireSize() const;

  void SerializeTo(BytesWriter* w) const;
  /// `arena`, when given, receives decoded string bytes (no per-string
  /// allocation); otherwise each string value gets its own allocation.
  static Result<Value> Deserialize(BytesReader* r,
                                   StringArena* arena = nullptr);

  /// Human-readable rendering for logs and examples.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b);

 private:
  struct StringPiece {
    StringOwner owner;
    uint32_t off = 0;
    uint32_t len = 0;
    std::string_view view() const {
      return std::string_view(owner->data() + off, len);
    }
  };

  std::variant<uint64_t, int64_t, double, StringPiece> v_;
};

/// Packs decoded string bytes into one shared blob per batch: every string
/// value of the batch references a slice of the same allocation. A small
/// memo of recently appended slices dedups the keyword column that posting
/// lists repeat in every tuple.
class StringArena {
 public:
  /// A string value backed by this arena's blob.
  Value Append(std::string_view s);

 private:
  static constexpr size_t kMemoSlots = 4;
  struct Memo {
    uint32_t off = 0;
    uint32_t len = 0;
  };
  std::shared_ptr<std::string> blob_;
  std::array<Memo, kMemoSlots> memo_{};
  size_t memo_used_ = 0;
  size_t memo_next_ = 0;
};

}  // namespace pierstack::pier
