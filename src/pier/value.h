// Value: the dynamic typed cell of PIER tuples.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/hashing.h"

namespace pierstack::pier {

/// Field types supported by the engine.
enum class ValueType : uint8_t {
  kUint64 = 0,  // ids, sizes, addresses
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// A dynamically typed value. Small, copyable, hashable.
class Value {
 public:
  Value() : v_(uint64_t{0}) {}
  explicit Value(uint64_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  static Value OfString(std::string_view s) { return Value(std::string(s)); }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }

  uint64_t AsUint64() const { return std::get<uint64_t>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  bool is_string() const { return type() == ValueType::kString; }

  /// Stable 64-bit hash (DHT publishing key, join bucketing).
  uint64_t Hash() const;

  /// Serialized wire size in bytes (type tag included).
  size_t WireSize() const;

  void SerializeTo(BytesWriter* w) const;
  static Result<Value> Deserialize(BytesReader* r);

  /// Human-readable rendering for logs and examples.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b) { return a.v_ < b.v_; }

 private:
  std::variant<uint64_t, int64_t, double, std::string> v_;
};

}  // namespace pierstack::pier
