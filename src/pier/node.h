// PierNode: PIER's per-node query processor over the DHT.
//
// Responsibilities (paper Sections 2–3):
//  * table storage: every tuple is published into the DHT under its
//    schema's index field (Put) and scanned from the owner's LocalStore,
//  * distributed query execution: the keyword-join chain — the query plan
//    of Figure 2 — routed via the DHT with a symmetric hash join per hop,
//    plus the single-site InvertedCache variant of Figure 3,
//  * result streaming: final answers travel directly to the query node,
//    bypassing the overlay ("With the exception of query answers, all
//    messages are sent via the DHT routing layer").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dht/node.h"
#include "pier/ops.h"
#include "pier/schema.h"

namespace pierstack::pier {

/// Aggregate counters for one PIER deployment.
struct PierMetrics {
  uint64_t tuples_published = 0;
  uint64_t publish_bytes = 0;           ///< Application bytes (tuples only).
  uint64_t publish_messages = 0;        ///< DHT put messages issued.
  uint64_t joins_executed = 0;
  uint64_t join_stage_messages = 0;
  uint64_t posting_entries_shipped = 0; ///< Entries rehashed between stages.
  uint64_t probe_messages = 0;
  uint64_t fetches = 0;
  /// Stored tuples lost to deserialize failures across ScanLocal / Fetch /
  /// join stages. Non-zero means stored state was corrupted somewhere —
  /// the integration suite asserts this stays 0.
  uint64_t tuples_dropped_deserialize = 0;
};

/// Flush thresholds for per-destination publish coalescing: a destination
/// group is flushed as one PutBatch message when it reaches either bound.
struct BatchOptions {
  size_t max_batch_tuples = 256;
  size_t max_batch_bytes = 48 * 1024;
};

/// One stage of a distributed join chain (one keyword, in PIERSearch).
struct JoinStage {
  std::string ns;            ///< Table namespace, e.g. "inverted".
  Value key;                 ///< DHT key value, e.g. Value("madonna").
  size_t key_col = 0;        ///< Column that must equal `key`.
  size_t join_col = 1;       ///< Join attribute column (fileID).
  /// Columns carried as payload from this stage's tuples (only the stage
  /// that first produces an entry contributes payload — stage 0 in a
  /// chain). Empty = carry the join key only.
  std::vector<size_t> payload_cols;
  /// If set, tuples must contain all these strings as substrings of
  /// column `filter_col` (the InvertedCache plan's in-situ selection).
  std::vector<std::string> substring_filter;
  size_t filter_col = SIZE_MAX;
};

/// A join-chain result entry: the join key plus the stage-0 payload.
struct JoinResultEntry {
  Value join_key;
  Tuple payload;
};

/// Parameters of one distributed join execution.
struct DistributedJoin {
  std::vector<JoinStage> stages;
  size_t limit = SIZE_MAX;  ///< Cap on result entries returned.
};

class PierNode {
 public:
  using JoinCallback =
      std::function<void(Status, std::vector<JoinResultEntry>)>;
  using FetchCallback = std::function<void(Status, std::vector<Tuple>)>;
  using ProbeCallback = std::function<void(Status, size_t posting_size)>;

  /// Attaches PIER to a DHT node. Claims the DHT node's upcall slots for
  /// PIER app types and its direct-message handler.
  PierNode(dht::DhtNode* dht, PierMetrics* metrics);

  dht::DhtNode* dht() { return dht_; }
  sim::HostId host() const { return dht_->host(); }

  /// Publishes a tuple into the DHT under its schema's index field.
  void Publish(const Schema& schema, Tuple tuple, sim::SimTime expiry = 0,
               dht::DhtNode::PutCallback callback = nullptr);

  /// Publishes many tuples with per-destination coalescing: tuples are
  /// grouped by their DHT key and each group ships as one PutBatch
  /// message (split by the BatchOptions flush thresholds). Same storage
  /// semantics as per-tuple Publish, a fraction of the messages. The
  /// callback, when given, fires once after every batch is acked (first
  /// error wins).
  void PublishBatch(const Schema& schema, std::vector<Tuple> tuples,
                    sim::SimTime expiry = 0,
                    dht::DhtNode::PutCallback callback = nullptr);

  void set_batch_options(const BatchOptions& options) {
    batch_options_ = options;
  }
  const BatchOptions& batch_options() const { return batch_options_; }

  /// Tuples of `schema` stored locally under `key` (post hash-collision
  /// filtering on the key column).
  std::vector<Tuple> ScanLocal(const Schema& schema, const Value& key);

  /// Fetches all tuples of `schema` keyed by `key` from the owner node.
  void Fetch(const Schema& schema, const Value& key, FetchCallback callback);

  /// Asks the owner of (ns, key) for its posting-list size — the optimizer
  /// probe behind the "smaller posting lists first" ordering.
  void ProbePostingSize(const std::string& ns, const Value& key,
                        ProbeCallback callback);

  /// Runs a distributed join chain; the callback fires with the surviving
  /// entries (or a timeout error).
  void ExecuteJoin(DistributedJoin join, JoinCallback callback,
                   sim::SimTime timeout = 30 * sim::kSecond);

 private:
  // Routed app types (offsets from dht::kAppUserBase).
  static constexpr int kAppJoinStage = dht::kAppUserBase + 1;
  static constexpr int kAppSizeProbe = dht::kAppUserBase + 2;
  // Direct message subtypes (within dht::DhtNode::kDirectApp).
  static constexpr int kJoinReply = 1;
  static constexpr int kProbeReply = 2;

  struct JoinStageMsg {
    uint64_t qid;
    std::shared_ptr<const DistributedJoin> join;
    size_t stage_idx;
    std::vector<JoinResultEntry> incoming;
    dht::NodeInfo origin;
  };
  struct SizeProbeMsg {
    uint64_t qid;
    std::string ns;
    Value key;
  };
  struct DirectEnvelope {
    int subtype;
    uint64_t qid;
    std::vector<JoinResultEntry> entries;  // kJoinReply
    size_t posting_size = 0;               // kProbeReply
  };

  void OnJoinStage(const dht::RouteMsg& msg);
  void OnSizeProbe(const dht::RouteMsg& msg);
  void OnDirect(sim::HostId from, const sim::Message& msg);

  /// Tuples of (ns, key) passing the stage's filters, as JoinResultEntries.
  std::vector<JoinResultEntry> LocalStageEntries(const JoinStage& stage);

  /// One-shot decode of a locally stored (ns, key) posting list; counts
  /// undecodable tuples into tuples_dropped_deserialize.
  std::vector<Tuple> DecodeLocalBatch(const std::string& ns, dht::Key key);

  static size_t EntryWireSize(const JoinResultEntry& e);
  static size_t StageMsgWireSize(const JoinStageMsg& m);

  uint64_t NextQid() { return next_qid_++; }

  dht::DhtNode* dht_;
  PierMetrics* metrics_;
  BatchOptions batch_options_;
  uint64_t next_qid_ = 1;

  struct PendingJoin {
    JoinCallback callback;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingJoin> pending_joins_;
  struct PendingProbe {
    ProbeCallback callback;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingProbe> pending_probes_;
};

}  // namespace pierstack::pier
