// PierNode: PIER's per-node query processor over the DHT.
//
// Responsibilities (paper Sections 2–3):
//  * table storage: every tuple is published into the DHT under its
//    schema's index field (Put) and scanned from the owner's LocalStore,
//  * rehash queues: standing per-destination send buffers that coalesce
//    published tuples ACROSS calls into PutBatch messages, flushed by size
//    or a simulator-clock interval (real PIER's rehash-queue design),
//  * distributed query execution: declarative plans (pier/plan.h) are
//    compiled into a chain of distributed stages (pier/plan_exec.h) —
//    index scans with serializable Expr filters, symmetric-hash-joined
//    hop by hop, Figure 2's query plan being the undecorated special case
//    and Figure 3's single-site InvertedCache plan the one-stage one.
//    Stage-to-stage entry lists travel as exact TupleBatch wire images and
//    stream in chunks past a flush threshold, credit-paced with a window
//    seeded from the consumer's observed service rate, with
//    weight-throwing termination so the query node knows when the chunked
//    answer stream is complete,
//  * result streaming: final answers travel directly to the query node,
//    bypassing the overlay ("With the exception of query answers, all
//    messages are sent via the DHT routing layer").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dht/node.h"
#include "pier/completeness.h"
#include "pier/ops.h"
#include "pier/plan.h"
#include "pier/plan_exec.h"
#include "pier/schema.h"

namespace pierstack::pier {

/// Aggregate counters for one PIER deployment.
struct PierMetrics {
  RelaxedCounter tuples_published;
  RelaxedCounter publish_bytes;           ///< Application bytes (tuples only).
  RelaxedCounter publish_messages;        ///< DHT put messages issued.
  RelaxedCounter joins_executed;
  RelaxedCounter plans_executed;          ///< ExecutePlan invocations.
  RelaxedCounter join_stage_messages;
  RelaxedCounter posting_entries_shipped; ///< Entries rehashed between stages.
  RelaxedCounter probe_messages;
  RelaxedCounter fetches;
  RelaxedCounter multi_fetches;           ///< FetchMany calls (owner-coalesced).
  /// Stored tuples lost to deserialize failures across ScanLocal / Fetch /
  /// join stages. Non-zero means stored state was corrupted somewhere —
  /// the integration suite asserts this stays 0.
  RelaxedCounter tuples_dropped_deserialize;
  /// Rehash-queue flushes triggered by the load-adaptive threshold (below
  /// the fixed max_batch_tuples ceiling): the destination looked idle, so
  /// the queue shipped early for latency.
  RelaxedCounter adaptive_flushes;
  /// Join chunk streams that paused emission because the downstream stage
  /// owner had not granted credit yet — each count is one backpressure
  /// stall episode, not one withheld chunk.
  RelaxedCounter credits_stalled;
  /// Credit-window grants received in chunk acks.
  RelaxedCounter credit_grants;
  /// Chunk streams whose initial credit window was deepened past the
  /// configured constant because the consumer's observed service rate
  /// (smoothed delivery latency) earned a longer pipeline.
  RelaxedCounter credit_window_boosts;
  /// Chunk streams dropped because no credit arrived within the stall
  /// timeout (the downstream owner died); the query completes via its own
  /// timeout with partial results.
  RelaxedCounter credit_streams_expired;
  /// Membership-epoch fences applied by this deployment's PIER layer: each
  /// is one DHT ownership change propagated up to re-probe standing rehash
  /// queues and kick stalled credit streams.
  RelaxedCounter epoch_fences;
  /// Stalled credit streams kicked by an epoch fence: the granting owner
  /// may have died, so the stream advances one chunk against the new ring
  /// instead of sitting out the stall timeout.
  RelaxedCounter epoch_stream_kicks;
  /// Staged queries re-dispatched under a new generation because the
  /// progress watchdog (or an epoch fence) saw no reply weight advancing —
  /// the stage owner's key arc re-resolves to its replica-holding
  /// successor instead of the query sitting out its deadline.
  RelaxedCounter stage_failovers;
  /// Backup replica-preferring MultiGet scatters issued for fetch legs
  /// whose next-hop latency EWMA crossed the hedge threshold.
  RelaxedCounter hedges_sent;
  /// Hedged fetches where the backup answered first (primary suppressed).
  RelaxedCounter hedges_won;
  /// Stage-0 plans refused by admission control at the stage owner.
  RelaxedCounter plans_shed;
  /// Refused plans the origin re-dispatched after the retry-after hint.
  RelaxedCounter plans_deferred;
  /// Top-level query results delivered with a non-exact Completeness
  /// record. The robustness gate holds this equal to the partials callers
  /// observe — a partial answer is never silent.
  RelaxedCounter partial_results;
};

/// Rehash-queue and join-stage flush/pacing policy.
///
/// A standing destination queue ships as one PutBatch message when it
/// reaches a size bound, or when `flush_interval` elapses since its first
/// pending tuple. With `adaptive_flush` on (the default) the tuple bound is
/// load-adaptive: the sender probes the pressure toward the destination
/// (sim::Network's per-destination in-flight signals via the next routing
/// hop — with a warm owner location cache the next hop IS the owner, so
/// the probe reads the actual destination) and flushes at
/// `min_batch_tuples` when the path is idle — latency —
/// doubling its patience with every in-flight message until the fixed
/// `max_batch_tuples` / `max_batch_bytes` ceilings — throughput under load.
/// The old constants are thus the ceiling of the adaptive range and the
/// exact policy when `adaptive_flush` is off.
///
/// A join stage's surviving entry list streams onward in chunks of at most
/// `max_stage_entries`. When the chunk count exceeds the credit window,
/// emission is credit-paced: the producer sends a window of chunks and
/// waits for the stage owner's acks (each granting one more chunk) before
/// sending more, so a slow owner backpressures its upstream instead of
/// being buried. `stage_credit_chunks` = 0 disables pacing (the unpaced
/// pre-credit behavior).
///
/// With `adaptive_credit` on (the default) the initial window is seeded
/// from the consumer's observed service rate instead of the constant: the
/// producer probes the smoothed delivery latency toward the stage's next
/// hop (sim::DestinationLoad's EWMA) and doubles the window for every
/// halving of observed latency below `credit_latency_ref`, up to
/// `max_stage_credit_chunks` — fast owners earn deeper pipelines
/// automatically. The constant stays the floor (slow or unmeasured paths
/// never drop below it) and `max_stage_credit_chunks` the ceiling.
struct BatchOptions {
  size_t max_batch_tuples = 256;
  size_t max_batch_bytes = 48 * 1024;
  sim::SimTime flush_interval = 50 * sim::kMillisecond;
  size_t max_stage_entries = 1024;
  bool adaptive_flush = true;
  size_t min_batch_tuples = 16;
  size_t stage_credit_chunks = 4;
  bool adaptive_credit = true;
  size_t max_stage_credit_chunks = 32;
  sim::SimTime credit_latency_ref = 40 * sim::kMillisecond;
  /// A credit-starved stream is dropped after this long without a grant
  /// (downstream owner presumed dead); the join's own timeout then returns
  /// partial results, exactly as for any lost chunk.
  sim::SimTime credit_stall_timeout = 10 * sim::kSecond;

  // --- Fault-tolerant query plane ----------------------------------------

  /// Stage re-dispatches one staged query may spend when its progress
  /// watchdog sees no reply weight advancing (a crashed or partitioned
  /// stage owner). Each failover bumps the query generation — stale
  /// replies are fenced — and re-routes stage 0 against the current ring,
  /// landing on the replica-holding successor. 0 disables failover (the
  /// legacy sit-out-the-deadline behavior).
  size_t stage_failover_budget = 2;
  /// Hedge FetchMany legs whose probed next-hop smoothed latency exceeds
  /// the threshold: a backup replica-preferring scatter races the primary
  /// after a delay; the first complete answer wins and the duplicate is
  /// suppressed by the shared fetch state.
  bool hedged_fetches = true;
  sim::SimTime hedge_latency_threshold = 60 * sim::kMillisecond;
  /// Backup delay = max(hedge_min_delay, hedge_delay_factor × observed
  /// latency), capped at hedge_max_delay — a quantile-style wait so hedges
  /// fire only when the primary is genuinely late, not on every probe
  /// blip. The cap matters once a leg has already degraded: without it the
  /// inflated EWMA pushes the backup past the primary's own retry schedule
  /// and the hedge can never win again.
  sim::SimTime hedge_min_delay = 50 * sim::kMillisecond;
  unsigned hedge_delay_factor = 3;
  sim::SimTime hedge_max_delay = 500 * sim::kMillisecond;
  /// Stage-0 admission control at the stage owner: refuse plans whose
  /// posting list (the entry volume the plan would scan and ship) exceeds
  /// a pressure-scaled budget. Refusals carry a retry-after hint; the
  /// origin defers and retries within its deadline or resolves the query
  /// as an explicit labeled shed.
  bool admission_control = true;
  /// In-flight messages at the owner below which every plan is admitted
  /// (an idle node never sheds).
  uint32_t admission_inflight_floor = 4;
  /// Entry budget at the first pressure level; halves per level above the
  /// floor, never below admission_min_entries.
  size_t admission_base_entries = 4096;
  size_t admission_min_entries = 64;
  /// Base back-off hint attached to refusals (scaled by pressure level).
  sim::SimTime admission_retry_after = 200 * sim::kMillisecond;
  /// Deferrals one query absorbs before a refusal becomes a shed.
  size_t admission_defer_budget = 2;
};

/// One stage of a distributed join chain (one keyword, in PIERSearch).
/// Legacy description consumed by the ExecuteJoin adapter, which lowers it
/// into a plan ExecStage (substring filters become Expr::Contains trees).
struct JoinStage {
  std::string ns;            ///< Table namespace, e.g. "inverted".
  Value key;                 ///< DHT key value, e.g. Value("madonna").
  size_t key_col = 0;        ///< Column that must equal `key`.
  size_t join_col = 1;       ///< Join attribute column (fileID).
  /// Columns carried as payload from this stage's tuples (only the stage
  /// that first produces an entry contributes payload — stage 0 in a
  /// chain). Empty = carry the join key only.
  std::vector<size_t> payload_cols;
  /// If set, tuples must contain all these strings as substrings of
  /// column `filter_col` (the InvertedCache plan's in-situ selection).
  std::vector<std::string> substring_filter;
  size_t filter_col = SIZE_MAX;
};

/// A join-chain result entry: the join key plus the stage-0 payload.
struct JoinResultEntry {
  Value join_key;
  Tuple payload;
};

/// Parameters of one distributed join execution.
struct DistributedJoin {
  std::vector<JoinStage> stages;
  size_t limit = SIZE_MAX;  ///< Cap on result entries returned.
};

/// Encodes an entry list as a TupleBatch wire image — one row per entry,
/// laid out [join_key, payload...] — so stage messages and answer replies
/// are charged their exact encoded size and round-trip through the real
/// codec. DecodeJoinEntries counts undecodable rows into `*dropped`.
std::vector<uint8_t> EncodeJoinEntries(
    const std::vector<JoinResultEntry>& entries);
std::vector<JoinResultEntry> DecodeJoinEntries(
    const std::vector<uint8_t>& image, size_t* dropped);

/// Ack aggregate of one PublishBatch call (defined in node.cc).
struct PublishAck;

class PierNode {
 public:
  /// Query-plane callbacks carry a Completeness record (see
  /// pier/completeness.h): partial answers are labeled, never silent.
  /// Legacy two-argument callables keep working through the template
  /// adapters below, which drop the record at the call boundary.
  using JoinCallback = std::function<void(Status, std::vector<JoinResultEntry>,
                                          const Completeness&)>;
  using PlanCallback =
      std::function<void(Status, std::vector<Tuple>, const Completeness&)>;
  using FetchCallback =
      std::function<void(Status, std::vector<Tuple>, const Completeness&)>;
  using ProbeCallback = std::function<void(Status, size_t posting_size)>;

  /// Attaches PIER to a DHT node. Claims the DHT node's upcall slots for
  /// PIER app types and its direct-message handler.
  PierNode(dht::DhtNode* dht, PierMetrics* metrics);
  ~PierNode();

  dht::DhtNode* dht() { return dht_; }
  sim::HostId host() const { return dht_->host(); }

  /// Publishes a tuple into the DHT under its schema's index field with an
  /// immediate per-tuple Put (no coalescing — the pre-rehash-queue path,
  /// kept for comparison benches and latency-critical one-offs).
  void Publish(const Schema& schema, Tuple tuple, sim::SimTime expiry = 0,
               dht::DhtNode::PutCallback callback = nullptr);

  /// Publishes tuples through the standing rehash queues: each tuple joins
  /// its destination's send buffer, which ships as one PutBatch message
  /// when it fills (BatchOptions size bounds) or when the flush interval
  /// elapses — so tuples coalesce across PublishBatch calls, not just
  /// within one (e.g. the QRS snoop path publishing file-by-file). Same
  /// storage semantics as per-tuple Publish. The callback, when given,
  /// fires once after every batch carrying this call's tuples is acked
  /// (first error wins).
  void PublishBatch(const Schema& schema, std::vector<Tuple> tuples,
                    sim::SimTime expiry = 0,
                    dht::DhtNode::PutCallback callback = nullptr);

  /// Force-ships every standing rehash queue now (shutdown, barrier before
  /// a measurement, or a latency-sensitive caller that cannot wait out the
  /// flush interval).
  void FlushPublishQueues();

  void set_batch_options(const BatchOptions& options) {
    batch_options_ = options;
  }
  const BatchOptions& batch_options() const { return batch_options_; }

  /// Tuples of `schema` stored locally under `key` (post hash-collision
  /// filtering on the key column).
  std::vector<Tuple> ScanLocal(const Schema& schema, const Value& key);

  /// Fetches all tuples of `schema` keyed by `key` from the owner node.
  void Fetch(const Schema& schema, const Value& key, FetchCallback callback);

  /// Legacy two-argument adapter: a callable not expecting the
  /// Completeness record compiles unchanged (the record is dropped here;
  /// the result is still counted and labeled internally). SFINAE keeps the
  /// three-argument std::function overloads the exact-match winners.
  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<Tuple>>, int> = 0>
  void Fetch(const Schema& schema, const Value& key, F callback) {
    Fetch(schema, key,
          FetchCallback([cb = std::move(callback)](
                            Status s, std::vector<Tuple> rows,
                            const Completeness&) mutable {
            cb(std::move(s), std::move(rows));
          }));
  }

  /// Owner-coalesced multi-key fetch: all tuples of `schema` keyed by any
  /// of `keys`, grouped by resolved owner so a K-owner key set costs K
  /// routed get messages with one TupleBatch reply per owner (see
  /// dht::DhtNode::MultiGet) instead of one Fetch round-trip per key.
  void FetchMany(const Schema& schema, std::vector<Value> keys,
                 FetchCallback callback);

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<Tuple>>, int> = 0>
  void FetchMany(const Schema& schema, std::vector<Value> keys, F callback) {
    FetchMany(schema, std::move(keys),
              FetchCallback([cb = std::move(callback)](
                                Status s, std::vector<Tuple> rows,
                                const Completeness&) mutable {
                cb(std::move(s), std::move(rows));
              }));
  }

  /// FetchMany without a Schema object: all tuples of namespace `ns` whose
  /// column `index_field` equals one of `keys` — what serialized plans
  /// carry (a FetchJoin node names the table, not a C++ Schema).
  void FetchManyByField(const std::string& ns, size_t index_field,
                        std::vector<Value> keys, FetchCallback callback);

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<Tuple>>, int> = 0>
  void FetchManyByField(const std::string& ns, size_t index_field,
                        std::vector<Value> keys, F callback) {
    FetchManyByField(ns, index_field, std::move(keys),
                     FetchCallback([cb = std::move(callback)](
                                       Status s, std::vector<Tuple> rows,
                                       const Completeness&) mutable {
                       cb(std::move(s), std::move(rows));
                     }));
  }

  /// Asks the owner of (ns, key) for its posting-list size — the optimizer
  /// probe behind the "smaller posting lists first" ordering.
  void ProbePostingSize(const std::string& ns, const Value& key,
                        ProbeCallback callback);

  /// Runs a declarative query plan (pier/plan.h): compiles it into a chain
  /// of distributed stages, walks the chain over the rehash/credit/chunk
  /// transport, applies the plan's query-node finishers (aggregates, top-k,
  /// limits) and — when the plan ends in a FetchJoin — resolves the
  /// surviving join keys through one owner-coalesced fetch, all within
  /// `timeout`. The callback receives the final rows: [join_key,
  /// payload...] rows for plans without a FetchJoin, fetched tuples
  /// otherwise.
  void ExecutePlan(QueryPlan plan, PlanCallback callback,
                   sim::SimTime timeout = 30 * sim::kSecond);

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<Tuple>>, int> = 0>
  void ExecutePlan(QueryPlan plan, F callback,
                   sim::SimTime timeout = 30 * sim::kSecond) {
    ExecutePlan(std::move(plan),
                PlanCallback([cb = std::move(callback)](
                                 Status s, std::vector<Tuple> rows,
                                 const Completeness&) mutable {
                  cb(std::move(s), std::move(rows));
                }),
                timeout);
  }

  /// Runs a distributed join chain; the callback fires with the surviving
  /// entries (or a timeout error). Thin adapter over the plan engine: the
  /// stages are lowered to ExecStages and executed exactly as a compiled
  /// plan chain would be.
  void ExecuteJoin(DistributedJoin join, JoinCallback callback,
                   sim::SimTime timeout = 30 * sim::kSecond);

  template <typename F,
            std::enable_if_t<std::is_invocable_v<F&, Status,
                                                 std::vector<JoinResultEntry>>,
                             int> = 0>
  void ExecuteJoin(DistributedJoin join, F callback,
                   sim::SimTime timeout = 30 * sim::kSecond) {
    ExecuteJoin(std::move(join),
                JoinCallback([cb = std::move(callback)](
                                 Status s, std::vector<JoinResultEntry> rows,
                                 const Completeness&) mutable {
                  cb(std::move(s), std::move(rows));
                }),
                timeout);
  }

 private:
  // Routed app types (offsets from dht::kAppUserBase).
  static constexpr int kAppJoinStage = dht::kAppUserBase + 1;
  static constexpr int kAppSizeProbe = dht::kAppUserBase + 2;
  // Direct message subtypes (within dht::DhtNode::kDirectApp).
  static constexpr int kJoinReply = 1;
  static constexpr int kProbeReply = 2;
  static constexpr int kChunkCredit = 3;
  /// Admission-control refusal: the stage-0 owner declined the plan; the
  /// envelope carries a retry-after hint back to the query origin.
  static constexpr int kPlanRefused = 4;
  /// Termination weight of a whole join (Mattern weight-throwing): the
  /// initial stage message carries it all; every chunk split divides it;
  /// every reply returns its share. The query node is done when the
  /// returned weights sum back to the full amount — correct under
  /// arbitrary reordering of chunked replies.
  static constexpr uint64_t kFullJoinWeight = uint64_t{1} << 62;

  struct JoinStageMsg {
    uint64_t qid;
    std::shared_ptr<const StagedQuery> query;
    size_t stage_idx;
    /// Incoming entry list as its exact TupleBatch wire image.
    std::vector<uint8_t> entries_image;
    uint64_t weight;
    dht::NodeInfo origin;
    /// Credit-paced chunk stream this message belongs to (0 = unpaced).
    /// The receiving stage owner acks each chunk with a kChunkCredit
    /// direct message to `producer`, granting the next send.
    uint64_t stream_id = 0;
    dht::NodeInfo producer;
    /// Failover fence: bumped per stage-0 re-dispatch; replies echo it so
    /// the query node ignores answers from a superseded dispatch.
    uint32_t generation = 0;
  };
  struct SizeProbeMsg {
    uint64_t qid;
    std::string ns;
    Value key;
  };
  struct DirectEnvelope {
    int subtype;
    uint64_t qid;
    std::vector<uint8_t> entries_image;  // kJoinReply
    uint64_t weight = 0;                 // kJoinReply
    size_t posting_size = 0;             // kProbeReply
    uint64_t stream_id = 0;              // kChunkCredit
    uint32_t credits = 0;                // kChunkCredit
    uint32_t generation = 0;             // kJoinReply / kPlanRefused
    sim::SimTime retry_after = 0;        // kPlanRefused back-off hint
  };

  /// One standing rehash queue: the pending PutBatch frame buffer for one
  /// (namespace, destination key).
  struct RehashQueue {
    BytesWriter frames;
    size_t count = 0;
    sim::SimTime expiry = 0;
    /// Load-adaptive tuple bound, probed once per fill cycle (at the first
    /// enqueue after the queue drains) — queues are erased on flush, so
    /// every batch re-probes without paying a routing lookup per tuple.
    size_t flush_threshold = 0;
    sim::EventId flush_timer = sim::kInvalidEventId;
    /// Ack aggregates of the PublishBatch calls with tuples in this queue
    /// since its last flush.
    std::vector<std::shared_ptr<PublishAck>> subscribers;
  };

  /// One credit-paced chunk stream: the pending tail of one stage-to-stage
  /// entry list, drained as the downstream owner grants credit.
  struct ChunkStream {
    uint64_t qid = 0;
    std::shared_ptr<const StagedQuery> query;
    size_t stage_idx = 0;
    dht::NodeInfo origin;
    dht::Key target = 0;
    std::vector<std::vector<JoinResultEntry>> chunks;  ///< Unsent tail.
    std::vector<uint64_t> weights;  ///< Parallel to `chunks`.
    size_t next = 0;                ///< First unsent chunk index.
    size_t credits = 0;
    sim::EventId stall_timer = sim::kInvalidEventId;
    uint32_t generation = 0;  ///< Stamped onto every forwarded chunk.
  };

  /// The shared distributed engine behind ExecutePlan and ExecuteJoin:
  /// runs the staged chain, accumulating chunked replies at this node.
  /// `top_level` queries count their own non-exact results into
  /// partial_results; composed callers (ExecutePlan) pass false and count
  /// once at their own final resolution.
  void ExecuteStaged(std::shared_ptr<const StagedQuery> query,
                     JoinCallback callback, sim::SimTime timeout,
                     bool top_level = true);

  /// FetchManyByField body with the partial-result accounting flag (plan
  /// fetch legs pass top_level=false; their plan counts the partial once).
  void FetchManyInternal(const std::string& ns, size_t index_field,
                         std::vector<Value> keys, FetchCallback callback,
                         bool top_level);

  /// (Re-)routes the staged query's stage-0 message under the pending
  /// join's current generation and re-arms its progress watchdog.
  void DispatchStage0(uint64_t qid);
  /// Arms the pending join's no-progress watchdog (geometric slices of the
  /// overall timeout, the AttemptTimeout pattern).
  void ArmJoinWatchdog(uint64_t qid);
  /// Watchdog/epoch probe: reply weight advanced since the last check →
  /// keep watching; stalled with failover budget left → re-dispatch under
  /// a new generation; stalled and spent → leave the deadline to deliver
  /// the labeled partial.
  void CheckJoinProgress(uint64_t qid);
  /// Resolves a pending join: folds the returned weight fraction into its
  /// Completeness, counts a labeled partial when non-exact, fires the
  /// callback, and erases the entry.
  void ResolveJoin(uint64_t qid, Status s);
  /// Stage-0 admission decision at the stage owner. Refusals count
  /// plans_shed and send a kPlanRefused envelope (with a pressure-scaled
  /// retry-after hint) back to the origin; returns false when refused.
  bool AdmitStage0(const JoinStageMsg& m);
  /// Origin side of a refusal: defer and re-dispatch within the deadline,
  /// or resolve the query as an explicit labeled shed.
  void OnPlanRefused(const DirectEnvelope& env);

  void OnJoinStage(const dht::RouteMsg& msg);
  void OnSizeProbe(const dht::RouteMsg& msg);
  void OnDirect(sim::HostId from, const sim::Message& msg);
  void OnChunkCredit(const DirectEnvelope& env);
  /// DHT membership-epoch listener: fences this node's standing transport
  /// state against the ownership change (see the definition).
  void OnMembershipEpoch();

  using QueueMap = std::map<std::pair<std::string, dht::Key>, RehashQueue>;

  void EnqueueRehash(const std::string& ns, dht::Key key, const Tuple& tuple,
                     size_t wire_size, sim::SimTime expiry,
                     const std::shared_ptr<PublishAck>& ack);
  /// The load-adaptive tuple flush bound for a queue headed to `key`'s
  /// owner (max_batch_tuples when adaptive_flush is off).
  size_t FlushThresholdTuples(dht::Key key) const;
  void FlushQueue(const std::pair<std::string, dht::Key>& dest,
                  RehashQueue* q);
  /// Flushes and drops the queue's map node (queues are re-created on
  /// demand, so drained destinations don't accumulate). Returns the next
  /// iterator.
  QueueMap::iterator FlushAndErase(QueueMap::iterator it);

  /// Sends the (possibly chunked) surviving entries to the next stage,
  /// credit-paced past the adaptive credit window.
  void ForwardToStage(const JoinStageMsg& prev,
                      std::vector<JoinResultEntry> surviving);
  /// The initial credit window for a chunk stream toward `target`'s stage
  /// owner: the configured constant, deepened by the consumer's observed
  /// service rate when adaptive_credit is on (see BatchOptions).
  size_t CreditWindowChunks(dht::Key target);
  /// Emits chunk `idx` of `stream` toward its target stage; a non-zero
  /// `stream_id` marks it credit-paced (the receiver acks it).
  void SendChunk(ChunkStream* stream, size_t idx, uint64_t stream_id);
  /// Drains `stream` while it has credit; pauses (recording the stall and
  /// arming the stall timer) when credit runs out, completes it otherwise.
  /// The map node is erased on completion — `it` is invalid after.
  void PumpStream(std::map<uint64_t, ChunkStream>::iterator it);
  void SendJoinReply(const dht::NodeInfo& origin, uint64_t qid,
                     const std::vector<JoinResultEntry>& entries,
                     uint64_t weight, uint32_t generation);

  /// Tuples of (ns, key) passing the stage's filter, as JoinResultEntries.
  std::vector<JoinResultEntry> LocalStageEntries(const ExecStage& stage);

  /// One-shot decode of a locally stored (ns, key) posting list; counts
  /// undecodable tuples into tuples_dropped_deserialize.
  std::vector<Tuple> DecodeLocalBatch(const std::string& ns, dht::Key key);

  static size_t StageMsgWireSize(const JoinStageMsg& m);

  uint64_t NextQid() { return next_qid_++; }

  dht::DhtNode* dht_;
  PierMetrics* metrics_;
  BatchOptions batch_options_;
  uint64_t next_qid_ = 1;

  /// (namespace, destination key) -> standing send buffer. Nodes exist
  /// only while tuples are pending: every flush outside EnqueueRehash
  /// erases the drained node, bounding the map by in-flight destinations.
  QueueMap rehash_queues_;

  struct PendingJoin {
    JoinCallback callback;
    sim::EventId timeout = sim::kInvalidEventId;
    std::vector<JoinResultEntry> entries;  ///< Accumulated chunk replies.
    uint64_t weight_received = 0;
    size_t limit = SIZE_MAX;
    /// Failover fence: replies stamped with an older generation belong to
    /// a superseded dispatch and are ignored.
    uint32_t generation = 0;
    std::shared_ptr<const StagedQuery> query;  ///< Kept for re-dispatch.
    sim::SimTime deadline = 0;       ///< Absolute overall deadline.
    sim::SimTime dispatched_at = 0;  ///< Last (re-)dispatch time.
    size_t failovers_left = 0;
    size_t defers_left = 0;
    /// Current no-progress check interval (doubles per failover; 0 = off).
    sim::SimTime watchdog_interval = 0;
    uint64_t watchdog_weight = 0;  ///< weight_received at the last check.
    sim::EventId watchdog = sim::kInvalidEventId;
    /// True for ExecuteJoin/direct callers: a non-exact resolution counts
    /// into partial_results here (plan-composed queries count at the plan).
    bool top_level = true;
    Completeness completeness;
  };
  std::map<uint64_t, PendingJoin> pending_joins_;
  struct PendingProbe {
    ProbeCallback callback;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingProbe> pending_probes_;
  /// Outbound credit-paced chunk streams by stream id.
  std::map<uint64_t, ChunkStream> chunk_streams_;
  uint64_t next_stream_id_ = 1;
  /// Guards OnMembershipEpoch against re-entry: a fence's own flushes can
  /// detect further dead peers and bump the epoch again mid-iteration.
  bool fencing_ = false;
  /// Liveness token for the epoch listener registered with the DHT node
  /// (which outlives this PierNode and has no listener-removal API).
  std::shared_ptr<bool> alive_;
};

/// Surfaces the PIER transport counters into a CounterSet under "pier."
/// names — the cross-layer reporting currency (see common/stats.h).
void ExportTransportCounters(const PierMetrics& m, CounterSet* out);

}  // namespace pierstack::pier
