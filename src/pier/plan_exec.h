// Plan compilation and query-node finishing: lowers a declarative
// QueryPlan (plan.h) into the staged form PierNode's distributed engine
// ships over the DHT, plus the local Volcano operators (ops.h) applied at
// the query node once the distributed stages complete.
//
// The staged form generalizes the old hardwired join chain: every
// distributed stage is an index scan at the stage key's owner with an
// optional serializable Expr filter and payload projection, symmetric-
// hash-joined against the incoming entry list. Join chains are the
// two-table special case; ExecuteJoin survives as a thin adapter that
// lowers a DistributedJoin into the same StagedQuery.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "pier/ops.h"
#include "pier/plan.h"

namespace pierstack::pier {

/// One distributed stage of a compiled plan: scan (ns, key) at the owner,
/// filter with `filter`, and join against the incoming entry list on
/// `join_col` (stage 0 seeds the list instead).
struct ExecStage {
  std::string ns;
  Value key;
  size_t key_col = 0;
  size_t join_col = 1;
  /// Columns carried as entry payload (stage 0 only contributes payload).
  std::vector<size_t> payload_cols;
  /// Predicate over the stored tuple (kTrue = admit everything).
  Expr filter;

  size_t WireSize() const;
};

/// What the distributed engine executes: the stage chain plus the final
/// answer cap. `cap_results` is cleared when query-node finishers need the
/// full surviving set (a TopK over a fetched column must see every
/// candidate; truncating at the last stage would pick arrival order).
struct StagedQuery {
  std::vector<ExecStage> stages;
  size_t limit = SIZE_MAX;
  bool cap_results = true;
};

/// One query-node finishing operator, applied over materialized rows via
/// the Volcano operators of ops.h.
struct LocalOpSpec {
  enum class Kind : uint8_t {
    kFilter = 0,
    kProject = 1,
    kGroupAggregate = 2,
    kTopK = 3,
    kLimit = 4,
  };
  Kind kind = Kind::kFilter;
  Expr expr;                        ///< kFilter.
  std::vector<size_t> cols;         ///< kProject / kGroupAggregate groups.
  std::vector<AggregateSpec> aggs;  ///< kGroupAggregate.
  size_t sort_col = 0;              ///< kTopK.
  size_t n = 0;                     ///< kTopK k / kLimit cap.
  bool descending = true;           ///< kTopK.
};

/// A fully compiled plan. Row layout through the pipeline:
///  * distributed stages produce entries, materialized at the query node
///    as [join_key, payload...] rows;
///  * `entry_ops` run over those rows;
///  * with `fetch`, the surviving rows' join keys (column 0) are resolved
///    through one owner-coalesced FetchMany against `fetch_ns`, and
///    `tuple_ops` run over the fetched tuples.
struct CompiledPlan {
  StagedQuery staged;
  std::vector<LocalOpSpec> entry_ops;
  bool fetch = false;
  std::string fetch_ns;
  size_t fetch_key_col = 0;
  std::vector<LocalOpSpec> tuple_ops;
  /// Final answer cap: an OUTERMOST kLimit, hoisted so the staged engine
  /// can truncate at the last stage and the fetch leg can bound its key
  /// set. A Limit beneath other finishers stays a positional op (it cuts
  /// the input those finishers see, not the answer).
  size_t limit = SIZE_MAX;
};

/// Lowers `plan` into its executable form. Fails with InvalidArgument for
/// shapes the distributed engine cannot run (a non-scan join input, a
/// FetchJoin below a join, an empty plan, ...).
Result<CompiledPlan> CompilePlan(const QueryPlan& plan);

/// Runs `ops` over `input` through ops.h's operator tree; returns the
/// surviving rows.
std::vector<Tuple> ApplyLocalOps(std::vector<Tuple> input,
                                 const std::vector<LocalOpSpec>& ops);

}  // namespace pierstack::pier
