// TupleBatch: the engine's batched tuple wire format.
//
// Image layout: varint tuple count, then each tuple's standalone
// serialization back-to-back. Because every frame is exactly the
// single-tuple format, a store holding per-tuple frames can assemble a
// batch image by concatenation alone (see dht::LocalStore::GetBatch).
//
// Deserialize is one-shot: one cursor pass over one contiguous buffer
// materializing one shared column arena plus one shared string blob for
// the whole batch — zero allocations per tuple, and posting lists that
// repeat their keyword in every tuple share the string bytes too.
#pragma once

#include <vector>

#include "pier/schema.h"

namespace pierstack::pier {

class TupleBatch {
 public:
  TupleBatch() = default;
  explicit TupleBatch(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }
  void Add(Tuple t) { tuples_.push_back(std::move(t)); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple> TakeTuples() { return std::move(tuples_); }

  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  /// Wire size of the whole image (count prefix included).
  size_t WireSize() const;

  void SerializeTo(BytesWriter* w) const;
  std::vector<uint8_t> Serialize() const;

  /// Strict one-shot decode: fails on truncation, corrupt frames, or
  /// trailing bytes.
  static Result<TupleBatch> Deserialize(const uint8_t* data, size_t size);
  static Result<TupleBatch> Deserialize(const std::vector<uint8_t>& data) {
    return Deserialize(data.data(), data.size());
  }

  /// Salvaging decode for soft-state storage: returns the tuples decoded
  /// before the first corrupt frame and reports how many of the claimed
  /// tuples were lost in `*dropped` (0 on a clean image).
  static TupleBatch DeserializeLossy(const uint8_t* data, size_t size,
                                     size_t* dropped);
  static TupleBatch DeserializeLossy(const std::vector<uint8_t>& data,
                                     size_t* dropped) {
    return DeserializeLossy(data.data(), data.size(), dropped);
  }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace pierstack::pier
