#include "pier/ops.h"

#include <algorithm>

namespace pierstack::pier {

bool VectorScan::Next(Tuple* out) {
  if (pos_ >= tuples_.size()) return false;
  *out = tuples_[pos_++];  // handle copy: refcount bump, no row deep-copy
  return true;
}

bool Selection::Next(Tuple* out) {
  Tuple t;
  while (child_->Next(&t)) {
    if (pred_(t)) {
      *out = std::move(t);
      return true;
    }
  }
  return false;
}

bool Projection::Next(Tuple* out) {
  Tuple t;
  if (!child_->Next(&t)) return false;
  std::vector<Value> vals;
  vals.reserve(cols_.size());
  for (size_t c : cols_) vals.push_back(t.at(c));
  *out = Tuple(std::move(vals));
  return true;
}

bool Limit::Next(Tuple* out) {
  if (produced_ >= limit_) return false;
  if (!child_->Next(out)) return false;
  ++produced_;
  return true;
}

HashJoin::HashJoin(std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right, size_t left_col,
                   size_t right_col)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_col_(left_col),
      right_col_(right_col) {}

void HashJoin::Open() {
  left_->Open();
  right_->Open();
  build_.Clear();
  pending_.clear();
  // Drain the build side first so the table can be sized exactly — one
  // rehash instead of log(n) incremental ones.
  std::vector<Tuple> rows;
  Tuple t;
  while (right_->Next(&t)) {
    rows.push_back(std::move(t));
    t = Tuple();
  }
  build_.Reserve(rows.size());
  for (Tuple& row : rows) {
    uint64_t h = row.at(right_col_).Hash();
    build_.Insert(h, std::move(row));
  }
  pending_.reserve(8);
}

bool HashJoin::Next(Tuple* out) {
  while (true) {
    if (!pending_.empty()) {
      *out = std::move(pending_.back());
      pending_.pop_back();
      return true;
    }
    if (!left_->Next(&current_left_)) return false;
    const Value& key = current_left_.at(left_col_);
    build_.ForEachMatch(key.Hash(), [&](const Tuple& match) {
      if (!(match.at(right_col_) == key)) return;  // hash collision
      pending_.push_back(Tuple::Concat(current_left_, match));
    });
  }
}

void HashJoin::Close() {
  left_->Close();
  right_->Close();
  build_.Clear();
}

SymmetricHashJoin::SymmetricHashJoin(size_t left_col, size_t right_col)
    : left_col_(left_col), right_col_(right_col) {}

std::vector<Tuple> SymmetricHashJoin::InsertLeft(Tuple t) {
  std::vector<Tuple> out;
  const Value& key = t.at(left_col_);
  uint64_t h = key.Hash();
  size_t candidates = right_table_.CountHash(h);
  if (candidates > 0) {
    out.reserve(candidates);
    right_table_.ForEachMatch(h, [&](const Tuple& match) {
      if (match.at(right_col_) == key) out.push_back(Tuple::Concat(t, match));
    });
  }
  left_table_.Insert(h, std::move(t));
  ++left_count_;
  return out;
}

std::vector<Tuple> SymmetricHashJoin::InsertRight(Tuple t) {
  std::vector<Tuple> out;
  const Value& key = t.at(right_col_);
  uint64_t h = key.Hash();
  size_t candidates = left_table_.CountHash(h);
  if (candidates > 0) {
    out.reserve(candidates);
    left_table_.ForEachMatch(h, [&](const Tuple& match) {
      if (match.at(left_col_) == key) out.push_back(Tuple::Concat(match, t));
    });
  }
  right_table_.Insert(h, std::move(t));
  ++right_count_;
  return out;
}

namespace {

double NumericOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kUint64:
      return static_cast<double>(v.AsUint64());
    case ValueType::kInt64:
      return static_cast<double>(v.AsInt64());
    case ValueType::kDouble:
      return v.AsDouble();
    case ValueType::kString:
      return 0.0;  // non-numeric columns aggregate as zero
  }
  return 0.0;
}

}  // namespace

GroupByAggregate::GroupByAggregate(std::unique_ptr<Operator> child,
                                   std::vector<size_t> group_cols,
                                   std::vector<AggregateSpec> aggregates)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggregates)) {}

void GroupByAggregate::Open() {
  child_->Open();
  groups_.clear();
  emit_pos_ = 0;
  // Hash of key values -> index into groups_ (collisions resolved by full
  // key comparison).
  std::unordered_multimap<uint64_t, size_t> lookup;
  Tuple t;
  while (child_->Next(&t)) {
    std::vector<Value> key;
    key.reserve(group_cols_.size());
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t c : group_cols_) {
      key.push_back(t.at(c));
      h = HashCombine(h, t.at(c).Hash());
    }
    size_t idx = SIZE_MAX;
    auto [lo, hi] = lookup.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (groups_[it->second].key == key) {
        idx = it->second;
        break;
      }
    }
    if (idx == SIZE_MAX) {
      idx = groups_.size();
      GroupState g;
      g.key = std::move(key);
      g.acc.resize(aggs_.size(), 0.0);
      g.n.resize(aggs_.size(), 0);
      groups_.push_back(std::move(g));
      lookup.emplace(h, idx);
    }
    GroupState& g = groups_[idx];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggregateSpec& spec = aggs_[a];
      double v = spec.kind == AggregateSpec::kCount
                     ? 0.0
                     : NumericOf(t.at(spec.col));
      switch (spec.kind) {
        case AggregateSpec::kCount:
          g.acc[a] += 1;
          break;
        case AggregateSpec::kSum:
        case AggregateSpec::kAvg:
          g.acc[a] += v;
          break;
        case AggregateSpec::kMin:
          g.acc[a] = g.n[a] == 0 ? v : std::min(g.acc[a], v);
          break;
        case AggregateSpec::kMax:
          g.acc[a] = g.n[a] == 0 ? v : std::max(g.acc[a], v);
          break;
      }
      g.n[a] += 1;
    }
  }
}

bool GroupByAggregate::Next(Tuple* out) {
  if (emit_pos_ >= groups_.size()) return false;
  const GroupState& g = groups_[emit_pos_++];
  std::vector<Value> vals = g.key;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    switch (aggs_[a].kind) {
      case AggregateSpec::kCount:
        vals.push_back(Value(static_cast<uint64_t>(g.acc[a])));
        break;
      case AggregateSpec::kAvg:
        vals.push_back(
            Value(g.n[a] == 0 ? 0.0 : g.acc[a] / static_cast<double>(g.n[a])));
        break;
      default:
        vals.push_back(Value(g.acc[a]));
        break;
    }
  }
  *out = Tuple(std::move(vals));
  return true;
}

void GroupByAggregate::Close() {
  child_->Close();
  groups_.clear();
}

void Distinct::Open() {
  child_->Open();
  seen_.clear();
}

bool Distinct::Next(Tuple* out) {
  Tuple t;
  while (child_->Next(&t)) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : t) h = HashCombine(h, v.Hash());
    auto [lo, hi] = seen_.equal_range(h);
    bool dup = false;
    for (auto it = lo; it != hi; ++it) {
      if (it->second == t) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen_.emplace(h, t);
    *out = std::move(t);
    return true;
  }
  return false;
}

void Distinct::Close() {
  child_->Close();
  seen_.clear();
}

TopK::TopK(std::unique_ptr<Operator> child, size_t col, size_t k,
           bool descending)
    : child_(std::move(child)), col_(col), k_(k), descending_(descending) {}

void TopK::Open() {
  child_->Open();
  heap_.clear();
  emit_pos_ = 0;
  if (k_ == 0) return;
  // "Better" = should be kept; the heap root is the worst retained tuple.
  auto better = [this](const Tuple& a, const Tuple& b) {
    return descending_ ? b.at(col_) < a.at(col_) : a.at(col_) < b.at(col_);
  };
  auto worst_first = [&](const Tuple& a, const Tuple& b) {
    return better(a, b);  // max-heap on "badness": root = worst retained
  };
  Tuple t;
  while (child_->Next(&t)) {
    if (heap_.size() < k_) {
      heap_.push_back(std::move(t));
      std::push_heap(heap_.begin(), heap_.end(), worst_first);
    } else if (better(t, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), worst_first);
      heap_.back() = std::move(t);
      std::push_heap(heap_.begin(), heap_.end(), worst_first);
    }
    t = Tuple();
  }
  // sort_heap orders ascending under the comparator; with "better" playing
  // the role of less-than, that is best-first — the emission order.
  std::sort_heap(heap_.begin(), heap_.end(), worst_first);
}

bool TopK::Next(Tuple* out) {
  if (emit_pos_ >= heap_.size()) return false;
  *out = heap_[emit_pos_++];
  return true;
}

void TopK::Close() {
  child_->Close();
  heap_.clear();
}

std::vector<Tuple> Collect(Operator* op) {
  std::vector<Tuple> out;
  op->Open();
  Tuple t;
  while (op->Next(&t)) out.push_back(std::move(t));
  op->Close();
  return out;
}

}  // namespace pierstack::pier
