#include "pier/tuple_batch.h"

#include <algorithm>
#include <cstring>

namespace pierstack::pier {

namespace {

/// Raw cursor for the specialized batch-decode inner loop: plain bounds
/// checks instead of a Result<T> (which carries a Status string) per
/// primitive — batch decoding reads millions of primitives per second, so
/// the per-read overhead is the bottleneck the one-shot decode removes.
struct Cursor {
  const uint8_t* p;
  const uint8_t* end;

  size_t remaining() const { return static_cast<size_t>(end - p); }
};

bool ReadVarint(Cursor* c, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (c->p == c->end || shift >= 64) return false;
    uint8_t b = *c->p++;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  *out = v;
  return true;
}

/// Decodes one value straight into the column arena.
bool DecodeValueInto(Cursor* c, StringArena* strings,
                     std::vector<Value>* cols) {
  if (c->p == c->end) return false;
  uint8_t tag = *c->p++;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kUint64: {
      uint64_t v;
      if (!ReadVarint(c, &v)) return false;
      cols->emplace_back(Value(v));
      return true;
    }
    case ValueType::kInt64: {
      uint64_t v;
      if (!ReadVarint(c, &v)) return false;
      cols->emplace_back(Value(static_cast<int64_t>(v)));
      return true;
    }
    case ValueType::kDouble: {
      if (c->remaining() < 8) return false;
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(*c->p++) << (8 * i);
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      cols->emplace_back(Value(d));
      return true;
    }
    case ValueType::kString: {
      uint64_t len;
      if (!ReadVarint(c, &len)) return false;
      if (len > c->remaining()) return false;
      cols->emplace_back(strings->Append(std::string_view(
          reinterpret_cast<const char*>(c->p), static_cast<size_t>(len))));
      c->p += len;
      return true;
    }
  }
  return false;
}

/// Decodes one row's values into the shared column arena; on a corrupt
/// frame the arena is rolled back to the row start. Returns the row's
/// arity, or SIZE_MAX on corruption.
size_t DecodeRowInto(Cursor* c, StringArena* strings,
                     std::vector<Value>* cols) {
  size_t row_begin = cols->size();
  uint64_t arity;
  if (!ReadVarint(c, &arity)) return SIZE_MAX;
  if (arity > c->remaining()) return SIZE_MAX;
  for (uint64_t i = 0; i < arity; ++i) {
    if (!DecodeValueInto(c, strings, cols)) {
      cols->resize(row_begin);
      return SIZE_MAX;
    }
  }
  return static_cast<size_t>(arity);
}

}  // namespace

size_t TupleBatch::WireSize() const {
  size_t n = VarintSize(tuples_.size());
  for (const auto& t : tuples_) n += t.WireSize();
  return n;
}

void TupleBatch::SerializeTo(BytesWriter* w) const {
  w->PutVarint(tuples_.size());
  for (const auto& t : tuples_) t.SerializeTo(w);
}

std::vector<uint8_t> TupleBatch::Serialize() const {
  BytesWriter w;
  SerializeTo(&w);
  return w.Take();
}

Result<TupleBatch> TupleBatch::Deserialize(const uint8_t* data, size_t size) {
  Cursor c{data, data + size};
  uint64_t count;
  if (!ReadVarint(&c, &count)) return Status::Corruption("batch underflow");
  // Every tuple frame costs at least one byte (its arity varint).
  if (count > c.remaining()) {
    return Status::Corruption("batch count exceeds payload");
  }
  StringArena strings;
  // The column arena is shared with the produced slices up front and
  // filled in place; slices address it by index, so growth while decoding
  // is safe, and nothing mutates it once Deserialize returns.
  auto cols = std::make_shared<std::vector<Value>>();
  // Every encoded value costs >= 2 bytes (tag + payload), so remaining/2
  // bounds the column count; cap the guess so the arena (which lives as
  // long as any tuple slice) isn't over-pinned for string-heavy rows.
  cols->reserve(std::min<size_t>(static_cast<size_t>(count) * 6,
                                 c.remaining() / 2));
  Tuple::Payload alias = cols;
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    size_t begin = cols->size();
    size_t arity = DecodeRowInto(&c, &strings, cols.get());
    if (arity == SIZE_MAX) return Status::Corruption("corrupt tuple frame");
    tuples.push_back(Tuple::Slice(alias, begin, arity));
  }
  if (c.p != c.end) {
    return Status::Corruption("trailing bytes after batch");
  }
  return TupleBatch(std::move(tuples));
}

TupleBatch TupleBatch::DeserializeLossy(const uint8_t* data, size_t size,
                                        size_t* dropped) {
  *dropped = 0;
  Cursor c{data, data + size};
  uint64_t count;
  if (!ReadVarint(&c, &count)) return TupleBatch();
  uint64_t claimed = count;
  if (claimed > c.remaining()) claimed = c.remaining();  // corrupt header cap
  StringArena strings;
  auto cols = std::make_shared<std::vector<Value>>();
  cols->reserve(std::min<size_t>(static_cast<size_t>(claimed) * 6,
                                 c.remaining() / 2));
  Tuple::Payload alias = cols;
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(claimed));
  for (uint64_t i = 0; i < claimed; ++i) {
    size_t begin = cols->size();
    size_t arity = DecodeRowInto(&c, &strings, cols.get());
    // A frame failing to decode loses the frame boundaries from there on,
    // so everything after the failure is unsalvageable.
    if (arity == SIZE_MAX) break;
    tuples.push_back(Tuple::Slice(alias, begin, arity));
  }
  *dropped = static_cast<size_t>(count - tuples.size());
  return TupleBatch(std::move(tuples));
}

}  // namespace pierstack::pier
