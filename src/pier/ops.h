// Local relational operators.
//
// The pull-based Operator interface (Open/Next/Close iterators) serves
// node-local query plans and tests; SymmetricHashJoin is the incremental
// join PIER runs inside the distributed keyword chain (paper Section 3.2:
// "the receiving node will perform a symmetric hash join (SHJ) between the
// incoming tuples and its local matching tuples").
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pier/schema.h"

namespace pierstack::pier {

/// Flat open-addressing multimap from 64-bit join hash to Tuple — the
/// bucket store of both joins. Entries live in one dense vector (no
/// per-node allocation like std::unordered_multimap) indexed by a linear
/// probing slot table; join tables only ever insert, which keeps probing
/// correct without tombstones.
class JoinTable {
 public:
  /// Sizes for `n` entries up front (load factor stays <= 1/2).
  void Reserve(size_t n) {
    entries_.reserve(n);
    size_t want = NextPow2(n * 2);
    if (want > slots_.size()) GrowSlots(want);
  }

  void Insert(uint64_t h, Tuple t) {
    if ((entries_.size() + 1) * 2 > slots_.size()) {
      GrowSlots(slots_.empty() ? 16 : slots_.size() * 2);
    }
    entries_.emplace_back(h, std::move(t));
    Place(static_cast<uint32_t>(entries_.size()));
  }

  /// Number of entries whose hash equals `h` (an upper bound on value
  /// matches — callers reserve with it, then compare values).
  size_t CountHash(uint64_t h) const {
    size_t n = 0;
    ForEachMatch(h, [&](const Tuple&) { ++n; });
    return n;
  }

  /// Invokes `fn` with every stored tuple whose hash equals `h`.
  template <typename Fn>
  void ForEachMatch(uint64_t h, Fn&& fn) const {
    if (slots_.empty()) return;
    size_t mask = slots_.size() - 1;
    for (size_t s = h & mask; slots_[s] != 0; s = (s + 1) & mask) {
      const auto& e = entries_[slots_[s] - 1];
      if (e.first == h) fn(e.second);
    }
  }

  size_t size() const { return entries_.size(); }
  void Clear() {
    entries_.clear();
    slots_.clear();
  }

 private:
  void Place(uint32_t idx1) {
    size_t mask = slots_.size() - 1;
    size_t s = entries_[idx1 - 1].first & mask;
    while (slots_[s] != 0) s = (s + 1) & mask;
    slots_[s] = idx1;
  }
  void GrowSlots(size_t n) {
    slots_.assign(n, 0);
    for (uint32_t i = 1; i <= entries_.size(); ++i) Place(i);
  }
  static size_t NextPow2(size_t n) {
    size_t p = 16;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<std::pair<uint64_t, Tuple>> entries_;  // insertion order
  std::vector<uint32_t> slots_;  ///< 1-based entry index; 0 = empty.
};

/// Pull-based iterator over tuples (Volcano style).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Open() = 0;
  /// Produces the next tuple; returns false when exhausted.
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() {}
};

/// Scans an in-memory tuple vector (e.g. a LocalStore namespace snapshot).
/// Next() hands out the stored tuple handle — a refcount bump on the
/// shared row payload, not a deep copy — so the scan stays re-Openable
/// (GroupByAggregate and tests replay inputs).
class VectorScan : public Operator {
 public:
  explicit VectorScan(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  void Open() override { pos_ = 0; }
  bool Next(Tuple* out) override;

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// Filters by predicate.
class Selection : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  Selection(std::unique_ptr<Operator> child, Predicate pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}
  void Open() override { child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  Predicate pred_;
};

/// Projects a subset of columns, in the given order.
class Projection : public Operator {
 public:
  Projection(std::unique_ptr<Operator> child, std::vector<size_t> cols)
      : child_(std::move(child)), cols_(std::move(cols)) {}
  void Open() override { child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> cols_;
};

/// Stops after `limit` tuples.
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  void Open() override {
    child_->Open();
    produced_ = 0;
  }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t produced_ = 0;
};

/// Classic build/probe equi-join (builds the right input on Open).
/// Output tuples are left ++ right concatenations.
class HashJoin : public Operator {
 public:
  HashJoin(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
           size_t left_col, size_t right_col);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  size_t left_col_, right_col_;
  JoinTable build_;
  Tuple current_left_;
  std::vector<Tuple> pending_;  // matches of current_left_ not yet emitted
};

/// Incremental symmetric hash join: tuples may be inserted on either side
/// in any order; each insertion returns the join outputs it completes.
/// Output tuples are left ++ right concatenations regardless of insertion
/// order.
class SymmetricHashJoin {
 public:
  SymmetricHashJoin(size_t left_col, size_t right_col);

  /// Sizes the two hash tables up front when the input cardinalities are
  /// known — batch decoding hands them to the join for free, avoiding the
  /// incremental rehashes of growing tables tuple by tuple.
  void Reserve(size_t left, size_t right) {
    left_table_.Reserve(left);
    right_table_.Reserve(right);
  }

  /// Inserts into the left relation; returns newly joined outputs.
  std::vector<Tuple> InsertLeft(Tuple t);
  /// Inserts into the right relation; returns newly joined outputs.
  std::vector<Tuple> InsertRight(Tuple t);

  size_t left_size() const { return left_count_; }
  size_t right_size() const { return right_count_; }

 private:
  size_t left_col_, right_col_;
  JoinTable left_table_;
  JoinTable right_table_;
  size_t left_count_ = 0, right_count_ = 0;
};

/// One aggregate column of a GroupByAggregate.
struct AggregateSpec {
  enum Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind;
  size_t col = 0;  ///< Input column (ignored for kCount).
};

/// Blocking hash group-by with the classic aggregates. Output rows are the
/// group-key columns followed by one column per aggregate (kAvg emits a
/// double; the others preserve/emit uint64-compatible Values).
class GroupByAggregate : public Operator {
 public:
  GroupByAggregate(std::unique_ptr<Operator> child,
                   std::vector<size_t> group_cols,
                   std::vector<AggregateSpec> aggregates);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  struct GroupState {
    std::vector<Value> key;
    std::vector<double> acc;   // sum / min / max / count per aggregate
    std::vector<uint64_t> n;   // rows seen per aggregate (for avg)
  };

  std::unique_ptr<Operator> child_;
  std::vector<size_t> group_cols_;
  std::vector<AggregateSpec> aggs_;
  std::vector<GroupState> groups_;
  size_t emit_pos_ = 0;
};

/// Removes duplicate rows (full-tuple equality). Blocking on first Next.
class Distinct : public Operator {
 public:
  explicit Distinct(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_multimap<uint64_t, Tuple> seen_;
};

/// Top-K by a column (ascending or descending); blocking. Useful for
/// "best results first" style plans over Item tuples.
class TopK : public Operator {
 public:
  TopK(std::unique_ptr<Operator> child, size_t col, size_t k,
       bool descending = true);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  size_t col_;
  size_t k_;
  bool descending_;
  std::vector<Tuple> heap_;
  size_t emit_pos_ = 0;
};

/// Drains an operator tree into a vector (testing/examples convenience).
std::vector<Tuple> Collect(Operator* op);

}  // namespace pierstack::pier
