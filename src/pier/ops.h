// Local relational operators.
//
// The pull-based Operator interface (Open/Next/Close iterators) serves
// node-local query plans and tests; SymmetricHashJoin is the incremental
// join PIER runs inside the distributed keyword chain (paper Section 3.2:
// "the receiving node will perform a symmetric hash join (SHJ) between the
// incoming tuples and its local matching tuples").
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pier/schema.h"

namespace pierstack::pier {

/// Pull-based iterator over tuples (Volcano style).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Open() = 0;
  /// Produces the next tuple; returns false when exhausted.
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() {}
};

/// Scans an in-memory tuple vector (e.g. a LocalStore namespace snapshot).
class VectorScan : public Operator {
 public:
  explicit VectorScan(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  void Open() override { pos_ = 0; }
  bool Next(Tuple* out) override;

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// Filters by predicate.
class Selection : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  Selection(std::unique_ptr<Operator> child, Predicate pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}
  void Open() override { child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  Predicate pred_;
};

/// Projects a subset of columns, in the given order.
class Projection : public Operator {
 public:
  Projection(std::unique_ptr<Operator> child, std::vector<size_t> cols)
      : child_(std::move(child)), cols_(std::move(cols)) {}
  void Open() override { child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> cols_;
};

/// Stops after `limit` tuples.
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  void Open() override {
    child_->Open();
    produced_ = 0;
  }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t produced_ = 0;
};

/// Classic build/probe equi-join (builds the right input on Open).
/// Output tuples are left ++ right concatenations.
class HashJoin : public Operator {
 public:
  HashJoin(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
           size_t left_col, size_t right_col);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  size_t left_col_, right_col_;
  std::unordered_multimap<uint64_t, Tuple> build_;
  Tuple current_left_;
  std::vector<Tuple> pending_;  // matches of current_left_ not yet emitted
};

/// Incremental symmetric hash join: tuples may be inserted on either side
/// in any order; each insertion returns the join outputs it completes.
/// Output tuples are left ++ right concatenations regardless of insertion
/// order.
class SymmetricHashJoin {
 public:
  SymmetricHashJoin(size_t left_col, size_t right_col);

  /// Inserts into the left relation; returns newly joined outputs.
  std::vector<Tuple> InsertLeft(Tuple t);
  /// Inserts into the right relation; returns newly joined outputs.
  std::vector<Tuple> InsertRight(Tuple t);

  size_t left_size() const { return left_count_; }
  size_t right_size() const { return right_count_; }

 private:
  static Tuple Concat(const Tuple& l, const Tuple& r);

  size_t left_col_, right_col_;
  std::unordered_multimap<uint64_t, Tuple> left_table_;
  std::unordered_multimap<uint64_t, Tuple> right_table_;
  size_t left_count_ = 0, right_count_ = 0;
};

/// One aggregate column of a GroupByAggregate.
struct AggregateSpec {
  enum Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind;
  size_t col = 0;  ///< Input column (ignored for kCount).
};

/// Blocking hash group-by with the classic aggregates. Output rows are the
/// group-key columns followed by one column per aggregate (kAvg emits a
/// double; the others preserve/emit uint64-compatible Values).
class GroupByAggregate : public Operator {
 public:
  GroupByAggregate(std::unique_ptr<Operator> child,
                   std::vector<size_t> group_cols,
                   std::vector<AggregateSpec> aggregates);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  struct GroupState {
    std::vector<Value> key;
    std::vector<double> acc;   // sum / min / max / count per aggregate
    std::vector<uint64_t> n;   // rows seen per aggregate (for avg)
  };

  std::unique_ptr<Operator> child_;
  std::vector<size_t> group_cols_;
  std::vector<AggregateSpec> aggs_;
  std::vector<GroupState> groups_;
  size_t emit_pos_ = 0;
};

/// Removes duplicate rows (full-tuple equality). Blocking on first Next.
class Distinct : public Operator {
 public:
  explicit Distinct(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_multimap<uint64_t, Tuple> seen_;
};

/// Top-K by a column (ascending or descending); blocking. Useful for
/// "best results first" style plans over Item tuples.
class TopK : public Operator {
 public:
  TopK(std::unique_ptr<Operator> child, size_t col, size_t k,
       bool descending = true);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  size_t col_;
  size_t k_;
  bool descending_;
  std::vector<Tuple> heap_;
  size_t emit_pos_ = 0;
};

/// Drains an operator tree into a vector (testing/examples convenience).
std::vector<Tuple> Collect(Operator* op);

}  // namespace pierstack::pier
